/**
 * @file
 * Reproduces paper Figure 13: distribution of the four bypass cases for
 * last-arriving bypassed source operands on the 8-wide RB-full machine,
 * SPECint2000(-like), plus the fraction of dynamic instructions with at
 * least one bypassed source (the number atop each bar in the paper) and
 * the fraction of bypasses needing an RB->TC format conversion (the
 * number below each bar).
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "core/scoreboard.hh"
#include "sim/report.hh"

int
main(int argc, char **argv)
{
    using namespace rbsim;
    using namespace rbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv);
    const std::vector<MachineConfig> configs = filterMachines(
        {MachineConfig::make(MachineKind::RbFull, 8)}, opts);
    const auto cells = sweepSuite(configs, "spec2000", opts.scale);

    std::printf("%s",
                banner("Figure 13: Potentially critical bypass cases "
                       "(8-wide RB-full, SPECint2000-like)").c_str());

    TextTable t;
    t.header({"benchmark", "TC->TC", "TC->RB", "RB->RB", "RB->TC(conv)",
              "%insts w/ bypassed src", "%conv of bypasses"});
    double conv_sum = 0;
    for (const Cell &c : cells) {
        const auto &bycase = c.result.vec("bypass.case");
        std::uint64_t total = 0;
        for (std::uint64_t v : bycase)
            total += v;
        auto pct = [total](std::uint64_t v) {
            return total ? 100.0 * double(v) / double(total) : 0.0;
        };
        const double conv = pct(bycase[static_cast<unsigned>(
            BypassCase::RbToTc)]);
        conv_sum += conv;
        t.row({c.workload,
               fmtDouble(pct(bycase[0]), 1) + "%",
               fmtDouble(pct(bycase[1]), 1) + "%",
               fmtDouble(pct(bycase[2]), 1) + "%",
               fmtDouble(conv, 1) + "%",
               fmtDouble(100.0 *
                             double(c.result.counter(
                                 "core.withBypassedSource")) /
                             double(c.result.counter("core.retired")),
                         1) + "%",
               fmtDouble(conv, 1) + "%"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("mean RB->TC conversion share of last-arriving bypasses: "
                "%.1f%%\n",
                conv_sum / double(cells.size()));
    std::printf("paper: conversions are a small share (e.g. bzip2 2.4%% "
                "of 69%%) because most last-arriving sources are loads, "
                "which produce TC results.\n");

    BenchReport report("fig13_bypass_cases", opts);
    report.addCells(cells);
    report.addMetric("mean_rbtc_conversion_pct",
                     conv_sum / double(cells.size()));
    report.write();
    return 0;
}
