/**
 * @file
 * Ablation: the value of hole-aware scheduling (paper section 4.3).
 *
 * The RB-limited machine's bypass network leaves a 2-cycle hole between
 * the first-level bypass and the register file. The Figure 8 wakeup
 * logic schedules around the hole with interleaved shift-register
 * patterns; a plain from-now-on wakeup cannot use the BYP-1 slot safely
 * and must wait for the register file. This bench measures that gap.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/stats.hh"
#include "common/strutil.hh"
#include "sim/report.hh"

int
main(int argc, char **argv)
{
    using namespace rbsim;
    using namespace rbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv);

    std::printf("%s",
                banner("Ablation: hole-aware wakeup on the RB-limited "
                       "machine (hmean IPC, all 20 benchmarks)").c_str());

    BenchReport report("ablation_holes", opts);

    TextTable t;
    t.header({"width", "hole-aware (Fig. 8)", "plain wakeup", "loss"});
    for (unsigned width : {4u, 8u}) {
        double ipc[2];
        for (int aware = 1; aware >= 0; --aware) {
            MachineConfig cfg =
                MachineConfig::make(MachineKind::RbLimited, width);
            cfg.holeAwareScheduling = aware != 0;
            cfg.label += " " + std::to_string(width) + "w" +
                         (aware ? "" : " plain-wakeup");
            const auto cells = sweepAll({cfg}, opts.scale);
            std::vector<double> ipcs;
            for (const Cell &c : cells)
                ipcs.push_back(c.result.ipc());
            ipc[aware] = harmonicMean(ipcs);
            report.addCells(cells);
        }
        t.row({std::to_string(width) + "-wide", fmtDouble(ipc[1], 3),
               fmtDouble(ipc[0], 3),
               fmtDouble(100.0 * (1.0 - ipc[0] / ipc[1]), 1) + "%"});
        std::fflush(stdout);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("expected: without hole awareness, every RB->RB\n"
                "back-to-back forward through BYP-1 is lost and dependent"
                " chains pay the register-file round trip.\n");

    report.write();
    return 0;
}
