/**
 * @file
 * Reproduces paper Figure 12: IPC of the 4-wide machines on the
 * SPECint95(-like) benchmarks.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace rbsim;
    using namespace rbsim::bench;
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const auto configs = filterMachines(paperMachines(4), opts);
    const auto cells = sweepSuite(configs, "spec95", opts.scale);
    printIpcFigure("Figure 12: IPC, 4-wide machines, SPECint95-like",
                   configs, cells, suiteWorkloads("spec95"));
    printHeadline(configs, cells,
                  "RB-full +6% vs Baseline, within 1.3% of Ideal; "
                  "RB-limited within 2.3% of RB-full");
    BenchReport report("fig12_ipc_4wide_spec95", opts);
    report.addCells(cells);
    report.write();
    return 0;
}
