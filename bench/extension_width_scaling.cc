/**
 * @file
 * Extension bench: execution-width scaling. The paper's introduction
 * frames the design space as bandwidth (more/wider units) versus latency
 * (faster adders); its evaluation stops at 8 wide. This bench extends
 * the sweep to a 16-wide, 4-cluster machine (scaled front end and
 * window) and shows how the redundant binary advantage grows with
 * bandwidth — the paper's "as execution bandwidth increases, performance
 * is more dependent on the latencies of instructions on the critical
 * path".
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/stats.hh"
#include "common/strutil.hh"
#include "sim/report.hh"

int
main(int argc, char **argv)
{
    using namespace rbsim;
    using namespace rbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv);

    std::printf("%s",
                banner("Extension: width scaling (hmean IPC, all 20 "
                       "benchmarks)").c_str());

    BenchReport report("extension_width_scaling", opts);

    TextTable t;
    t.header({"width", "Baseline", "RB-full", "Ideal",
              "RB-full vs Baseline"});
    for (unsigned width : {4u, 8u, 16u}) {
        double ipc[3];
        int i = 0;
        for (MachineKind kind : {MachineKind::Baseline,
                                 MachineKind::RbFull,
                                 MachineKind::Ideal}) {
            MachineConfig cfg = MachineConfig::make(kind, width);
            cfg.label += " " + std::to_string(width) + "w";
            const auto cells = sweepAll({cfg}, opts.scale);
            std::vector<double> ipcs;
            for (const Cell &c : cells)
                ipcs.push_back(c.result.ipc());
            ipc[i++] = harmonicMean(ipcs);
            report.addCells(cells);
        }
        t.row({std::to_string(width) + "-wide", fmtDouble(ipc[0], 3),
               fmtDouble(ipc[1], 3), fmtDouble(ipc[2], 3),
               fmtDouble(100.0 * (ipc[1] / ipc[0] - 1.0), 1) + "%"});
        std::fflush(stdout);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("expected: the RB-over-Baseline gap widens with width "
                "(the paper's bandwidth-vs-latency argument), while "
                "absolute returns diminish as the window, front end, and "
                "cluster crossings bind.\n");

    report.write();
    return 0;
}
