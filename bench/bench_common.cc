#include "bench_common.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>

#include <unistd.h>

#include "common/alloccount.hh"
#include "common/stats.hh"
#include "common/strutil.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/service.hh"
#include "sim/report.hh"
#include "trace/tracer.hh"

namespace rbsim::bench
{

// ------------------------------------------------------------- options

namespace
{

[[noreturn]] void
usageDie(const char *prog, const char *why)
{
    std::fprintf(stderr,
                 "%s: %s\n"
                 "usage: %s [--json <path>] [--scale <n>] "
                 "[--machines <label,label,...>] "
                 "[--scheduler wakeup|polled|oracle] "
                 "[--trace <prefix>] [--trace-last <n>] [--profile] "
                 "[--server <host:port>]\n",
                 prog, why, prog);
    std::exit(2);
}

// The scheduler mode applies to every config a bench builds, including
// ablation grids assembled after parseBenchArgs, so it lives here and is
// applied to a copy of each config right before simulate(). The trace
// options follow the same pattern: the sweep worker consults them for
// every cell.
std::string g_scheduler = "wakeup";
std::string g_trace_prefix;
std::size_t g_trace_last = 0;
bool g_profile = false;
std::string g_server;

MachineConfig
applyScheduler(MachineConfig cfg)
{
    cfg.polledScheduler = g_scheduler == "polled";
    cfg.wakeupOracle = g_scheduler == "oracle";
    return cfg;
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        if (end > start)
            out.push_back(csv.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

} // namespace

BenchOptions
parseBenchArgs(int &argc, char **argv)
{
    BenchOptions opts;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                usageDie(argv[0],
                         (std::string(flag) + " needs a value").c_str());
            return argv[++i];
        };
        if (std::strcmp(arg, "--json") == 0) {
            opts.jsonPath = value("--json");
        } else if (std::strcmp(arg, "--scale") == 0) {
            const long n = std::strtol(value("--scale"), nullptr, 10);
            if (n < 1)
                usageDie(argv[0], "--scale must be >= 1");
            opts.scale = static_cast<unsigned>(n);
        } else if (std::strcmp(arg, "--machines") == 0) {
            opts.machines = splitCsv(value("--machines"));
            if (opts.machines.empty())
                usageDie(argv[0], "--machines needs at least one label");
        } else if (std::strcmp(arg, "--scheduler") == 0) {
            opts.scheduler = value("--scheduler");
            if (opts.scheduler != "wakeup" &&
                opts.scheduler != "polled" && opts.scheduler != "oracle")
                usageDie(argv[0],
                         "--scheduler must be wakeup, polled or oracle");
            g_scheduler = opts.scheduler;
        } else if (std::strcmp(arg, "--trace") == 0) {
            opts.tracePrefix = value("--trace");
            g_trace_prefix = opts.tracePrefix;
        } else if (std::strcmp(arg, "--trace-last") == 0) {
            const long n =
                std::strtol(value("--trace-last"), nullptr, 10);
            if (n < 1)
                usageDie(argv[0], "--trace-last must be >= 1");
            opts.traceLast = static_cast<std::size_t>(n);
            g_trace_last = opts.traceLast;
        } else if (std::strcmp(arg, "--profile") == 0) {
            opts.profile = true;
            g_profile = true;
            // Per-thread counting; harmless no-op without the allochook
            // library linked in (allocationsCounted stays false).
            alloccount::enable(true);
        } else if (std::strcmp(arg, "--server") == 0) {
            opts.server = value("--server");
            g_server = opts.server;
        } else {
            argv[out++] = argv[i]; // not ours; leave for the caller
        }
    }
    argc = out;
    argv[argc] = nullptr;
    if (!opts.server.empty() &&
        (g_profile || !g_trace_prefix.empty() || g_trace_last)) {
        usageDie(argv[0], "--server cannot produce host-side artifacts; "
                          "drop --trace/--trace-last/--profile");
    }
    return opts;
}

std::vector<MachineConfig>
filterMachines(std::vector<MachineConfig> configs,
               const BenchOptions &opts)
{
    if (opts.machines.empty())
        return configs;
    std::vector<MachineConfig> kept;
    for (const MachineConfig &c : configs) {
        for (const std::string &want : opts.machines) {
            if (c.label == want) {
                kept.push_back(c);
                break;
            }
        }
    }
    if (kept.empty()) {
        std::fprintf(stderr, "--machines matched no configuration\n");
        std::exit(2);
    }
    return kept;
}

// -------------------------------------------------------------- report

Cell
sampledCell(const SampledResult &sampled)
{
    Cell cell;
    cell.machine = sampled.machine;
    cell.workload = sampled.workload;
    cell.result.machine = sampled.machine;
    cell.result.workload = sampled.workload;
    cell.result.halted = sampled.completed;
    cell.result.hostSeconds = sampled.hostSeconds;
    cell.result.stats = sampled.merged;
    cell.sampled = true;
    cell.sampledIpc = sampled.ipcMean;
    cell.ci95 = sampled.ipcCi95;
    cell.windows = sampled.windows;
    return cell;
}

double
cellIpc(const Cell &cell)
{
    return cell.sampled ? cell.sampledIpc : cell.result.ipc();
}

BenchReport::BenchReport(std::string bench_, BenchOptions opts_)
    : bench(std::move(bench_)), opts(std::move(opts_))
{}

void
BenchReport::addCell(const Cell &cell)
{
    cells.push_back(cell);
}

void
BenchReport::addCells(const std::vector<Cell> &more)
{
    cells.insert(cells.end(), more.begin(), more.end());
}

void
BenchReport::addMetric(const std::string &name, double value)
{
    metrics.emplace_back(name, value);
}

void
BenchReport::write() const
{
    if (opts.jsonPath.empty())
        return;

    Json root = Json::object();
    root["schema"] = "rbsim-bench-1";
    root["bench"] = bench;
    root["scale"] = opts.scale;
    root["scheduler"] = opts.scheduler;

    Json machines = Json::array();
    std::vector<std::string> seen;
    for (const Cell &c : cells) {
        bool dup = false;
        for (const std::string &m : seen)
            dup = dup || m == c.machine;
        if (!dup) {
            seen.push_back(c.machine);
            machines.push(c.machine);
        }
    }
    root["machines"] = std::move(machines);

    Json cellArr = Json::array();
    for (const Cell &c : cells) {
        Json jc = Json::object();
        jc["machine"] = c.machine;
        jc["workload"] = c.workload;
        jc["ipc"] = cellIpc(c);
        jc["host_ms"] = c.result.hostSeconds * 1e3;
        jc["sim_khz"] = c.result.simKhz();
        if (c.sampled) {
            jc["sampled"] = true;
            jc["ci95"] = c.ci95;
            jc["windows"] = c.windows;
        }
        Json stats = Json::object();
        Json counters = Json::object();
        for (const auto &[name, v] : c.result.stats.counters)
            counters[name] = v;
        Json formulas = Json::object();
        for (const auto &[name, v] : c.result.stats.formulas)
            formulas[name] = v;
        Json vectors = Json::object();
        for (const auto &[name, vec] : c.result.stats.vectors) {
            Json a = Json::array();
            for (std::uint64_t v : vec)
                a.push(v);
            vectors[name] = std::move(a);
        }
        stats["counters"] = std::move(counters);
        stats["formulas"] = std::move(formulas);
        stats["vectors"] = std::move(vectors);
        jc["stats"] = std::move(stats);
        if (c.profiled) {
            Json prof = Json::object();
            Json stages = Json::object();
            for (unsigned s = 0; s < HostProfiler::NumStages; ++s) {
                stages[HostProfiler::stageName(s)] =
                    c.profiler.seconds(s) * 1e3; // milliseconds
            }
            prof["stage_ms"] = std::move(stages);
            prof["allocations"] = c.profiler.allocations;
            prof["allocations_counted"] = c.profiler.allocationsCounted;
            jc["profile"] = std::move(prof);
        }
        cellArr.push(std::move(jc));
    }
    root["cells"] = std::move(cellArr);

    Json summary = Json::object();
    Json hmeans = Json::object();
    for (const std::string &m : seen) {
        std::vector<double> ipcs;
        for (const Cell &c : cells) {
            if (c.machine == m)
                ipcs.push_back(cellIpc(c));
        }
        hmeans[m] = harmonicMean(ipcs);
    }
    summary["hmean_ipc"] = std::move(hmeans);
    Json hspeed = Json::object();
    for (const std::string &m : seen) {
        std::vector<double> khz;
        for (const Cell &c : cells) {
            if (c.machine == m)
                khz.push_back(c.result.simKhz());
        }
        hspeed[m] = harmonicMean(khz);
    }
    summary["hmean_sim_khz"] = std::move(hspeed);
    Json jmetrics = Json::object();
    for (const auto &[name, v] : metrics)
        jmetrics[name] = v;
    summary["metrics"] = std::move(jmetrics);
    root["summary"] = std::move(summary);

    std::ofstream out(opts.jsonPath);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", opts.jsonPath.c_str());
        std::exit(1);
    }
    out << root.dump(2) << '\n';
}

Cell
throughputCell(const std::string &machine, const std::string &workload,
               std::uint64_t ops, double seconds)
{
    Cell cell;
    cell.machine = machine;
    cell.workload = workload;
    cell.result.machine = machine;
    cell.result.workload = workload;
    cell.result.halted = true;
    cell.result.hostSeconds = seconds;
    cell.result.stats.counters["core.cycles"] = ops;
    cell.result.stats.formulas["core.ipc"] = 1.0;
    return cell;
}

// --------------------------------------------------------------- sweep

namespace
{

/** Machine/workload label as a filename fragment. */
std::string
cellTag(std::string s)
{
    for (char &c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
            c != '_') {
            c = '-';
        }
    }
    return s;
}

struct Task
{
    const MachineConfig *cfg;
    const WorkloadInfo *wl;
};

/** The --server path: ship the grid to an rbsim-serve instance. */
std::vector<Cell>
sweepRemote(const std::vector<Task> &tasks, unsigned scale)
{
    std::unique_ptr<serve::Client> client;
    try {
        client = std::make_unique<serve::Client>(g_server);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "--server: %s\n", e.what());
        std::exit(1);
    }

    // Ids must be unique for the server's whole session, which may span
    // many bench invocations — prefix them with this process's identity.
    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "bench-%ld-",
                  static_cast<long>(::getpid()));

    for (std::size_t i = 0; i < tasks.size(); ++i) {
        Json req = Json::object();
        req["id"] = prefix + std::to_string(i);
        req["workload"] = tasks[i].wl->name;
        req["scale"] = scale;
        // The full configuration object (not just a label) so ablation
        // grids built after parseBenchArgs survive the wire.
        req["config"] = serve::configToJson(*tasks[i].cfg);
        req["scheduler"] = g_scheduler;
        client->sendLine(req.dump());
    }

    std::vector<Cell> cells(tasks.size());
    std::vector<bool> got(tasks.size(), false);
    std::size_t remaining = tasks.size();
    std::string line;
    bool failed = false;
    while (remaining && client->readLine(line)) {
        Json resp;
        try {
            resp = Json::parse(line);
        } catch (const JsonError &e) {
            std::fprintf(stderr, "--server: bad response: %s\n", e.what());
            std::exit(1);
        }
        const Json *idField = resp.find("id");
        std::size_t i = tasks.size();
        if (idField && idField->isString() &&
            idField->asString().rfind(prefix, 0) == 0) {
            i = static_cast<std::size_t>(std::strtoul(
                idField->asString().c_str() + std::strlen(prefix), nullptr,
                10));
        }
        if (i >= tasks.size() || got[i]) {
            std::fprintf(stderr, "--server: unexpected response id\n");
            std::exit(1);
        }
        got[i] = true;
        --remaining;

        const Json *ok = resp.find("ok");
        if (!ok || !ok->isBool() || !ok->asBool()) {
            const Json *err = resp.find("error");
            std::fprintf(stderr, "bench cell %s/%s failed remotely: %s\n",
                         tasks[i].cfg->label.c_str(),
                         tasks[i].wl->name.c_str(),
                         err && err->isString() ? err->asString().c_str()
                                                : "unknown error");
            failed = true;
            continue;
        }

        Cell &cell = cells[i];
        cell.machine = tasks[i].cfg->label;
        cell.workload = tasks[i].wl->name;
        SimResult &r = cell.result;
        r.machine = cell.machine;
        r.workload = cell.workload;
        if (const Json *halted = resp.find("halted"))
            r.halted = halted->isBool() && halted->asBool();
        if (const Json *hostMs = resp.find("host_ms"))
            r.hostSeconds = hostMs->asDouble() / 1e3;
        if (const Json *stats = resp.find("stats")) {
            if (const Json *c = stats->find("counters"))
                for (const auto &[name, v] : c->items())
                    r.stats.counters[name] = v.asU64();
            if (const Json *f = stats->find("formulas"))
                for (const auto &[name, v] : f->items())
                    r.stats.formulas[name] = v.asDouble();
            if (const Json *vecs = stats->find("vectors")) {
                for (const auto &[name, v] : vecs->items()) {
                    auto &dst = r.stats.vectors[name];
                    for (const Json &e : v.elements())
                        dst.push_back(e.asU64());
                }
            }
        }
    }
    if (remaining) {
        std::fprintf(stderr,
                     "--server: connection closed with %zu cells pending\n",
                     remaining);
        std::exit(1);
    }
    if (failed)
        std::exit(1);
    return cells;
}

std::vector<Cell>
sweep(const std::vector<MachineConfig> &configs,
      const std::vector<WorkloadInfo> &workloads, unsigned scale)
{
    std::vector<Task> tasks;
    for (const WorkloadInfo &w : workloads) {
        for (const MachineConfig &c : configs)
            tasks.push_back(Task{&c, &w});
    }

    if (!g_server.empty())
        return sweepRemote(tasks, scale);

    // Per-cell host-side context: tracers write files, the profiler is
    // filled on the worker thread. Pre-constructed here so the specs can
    // borrow stable pointers for the batch's lifetime.
    struct CellCtx
    {
        std::ofstream traceOut;
        std::unique_ptr<trace::Tracer> tracer;
        std::string cellFile;
        HostProfiler prof;
    };
    std::vector<CellCtx> ctx(tasks.size());
    std::vector<serve::JobSpec> specs(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        WorkloadParams wp;
        wp.scale = scale;
        Program prog = tasks[i].wl->build(wp);
        const MachineConfig cfg = applyScheduler(*tasks[i].cfg);

        // Per-cell pipeline tracing (--trace / --trace-last). The
        // tracer is only constructed when asked for, so ordinary
        // benchmarking keeps the untraced hot path.
        if (!g_trace_prefix.empty() || g_trace_last) {
            const std::string prefix = g_trace_prefix.empty()
                ? std::string("rbsim-bench-fail")
                : g_trace_prefix;
            ctx[i].cellFile = prefix + "." + cellTag(cfg.label) + "." +
                              cellTag(tasks[i].wl->name) + ".trace";
            trace::Tracer::Options topts;
            if (!g_trace_last) {
                ctx[i].traceOut.open(ctx[i].cellFile);
                if (ctx[i].traceOut)
                    topts.stream = &ctx[i].traceOut;
            }
            topts.ringCap = g_trace_last;
            topts.codeBase = prog.codeBase;
            topts.decodeDepth = cfg.fetchDecodeDepth;
            topts.renameDepth = cfg.renameDepth;
            ctx[i].tracer = std::make_unique<trace::Tracer>(topts);
        }

        specs[i].cfg = cfg;
        specs[i].prog = std::move(prog);
        specs[i].opts.tracer = ctx[i].tracer.get();
        if (g_profile)
            specs[i].opts.profiler = &ctx[i].prof;
        // Traced/profiled cells must actually execute to produce their
        // host-side artifacts.
        specs[i].bypassCache =
            specs[i].opts.tracer || specs[i].opts.profiler;
    }

    const std::vector<serve::JobOutcome> outcomes =
        serve::SimService::instance().runBatch(std::move(specs));

    std::vector<Cell> cells(tasks.size());
    bool failed = false;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        auto dump_ring = [&]() {
            if (!ctx[i].tracer || !g_trace_last)
                return;
            std::ofstream out(ctx[i].cellFile);
            out << ctx[i].tracer->renderRing();
            std::fprintf(stderr,
                         "pipeline trace of last %zu instructions: %s\n",
                         ctx[i].tracer->ring().size(),
                         ctx[i].cellFile.c_str());
        };
        if (!outcomes[i].ok) {
            std::fprintf(stderr, "bench cell %s/%s failed: %s\n",
                         tasks[i].cfg->label.c_str(),
                         tasks[i].wl->name.c_str(),
                         outcomes[i].error.c_str());
            dump_ring();
            failed = true;
            continue;
        }
        if (!outcomes[i].result.halted)
            dump_ring();
        cells[i].machine = tasks[i].cfg->label;
        cells[i].workload = tasks[i].wl->name;
        cells[i].result = outcomes[i].result;
        if (g_profile) {
            cells[i].profiler = ctx[i].prof;
            cells[i].profiled = true;
        }
    }
    if (failed)
        std::exit(1);
    return cells;
}

} // namespace

std::vector<Cell>
sweepSuite(const std::vector<MachineConfig> &configs,
           const std::string &suite, unsigned scale)
{
    return sweep(configs, suiteWorkloads(suite), scale);
}

std::vector<Cell>
sweepAll(const std::vector<MachineConfig> &configs, unsigned scale)
{
    return sweep(configs, allWorkloads(), scale);
}

std::vector<Cell>
sweepWorkloads(const std::vector<MachineConfig> &configs,
               const std::vector<WorkloadInfo> &workloads, unsigned scale)
{
    return sweep(configs, workloads, scale);
}

// ------------------------------------------------------------- figures

void
printIpcFigure(const std::string &title,
               const std::vector<MachineConfig> &configs,
               const std::vector<Cell> &cells,
               const std::vector<WorkloadInfo> &workloads)
{
    std::printf("%s", banner(title).c_str());

    TextTable table;
    std::vector<std::string> head{"benchmark"};
    for (const MachineConfig &c : configs)
        head.push_back(c.label);
    table.header(head);

    std::vector<std::vector<double>> per_machine(configs.size());
    std::size_t i = 0;
    for (const WorkloadInfo &w : workloads) {
        std::vector<std::string> row{w.name};
        for (std::size_t m = 0; m < configs.size(); ++m, ++i) {
            const double ipc = cells[i].result.ipc();
            row.push_back(fmtDouble(ipc, 3));
            per_machine[m].push_back(ipc);
        }
        table.row(row);
    }

    std::vector<std::string> hrow{"hmean"};
    std::vector<std::string> arow{"amean"};
    std::vector<double> ameans;
    for (const auto &col : per_machine) {
        hrow.push_back(fmtDouble(harmonicMean(col), 3));
        arow.push_back(fmtDouble(arithmeticMean(col), 3));
        ameans.push_back(arithmeticMean(col));
    }
    table.row(hrow);
    table.row(arow);
    std::printf("%s\n", table.render().c_str());

    // Bar view of the means (the look of the paper's figures).
    double maxmean = 0;
    for (double m : ameans)
        maxmean = std::max(maxmean, m);
    for (std::size_t m = 0; m < configs.size(); ++m) {
        std::printf("  %-12s |%s| %.3f\n", configs[m].label.c_str(),
                    textBar(ameans[m], maxmean, 44).c_str(), ameans[m]);
    }
    std::printf("\n");

    // Per-stage cycle accounting: where each machine's cycles go,
    // summed over the suite. retire-idle / fetch-idle are the share of
    // cycles with zero instructions through that stage; hole-wait is
    // entry-cycles spent blocked only on bypass-availability holes.
    TextTable acct;
    acct.header({"machine", "retire-idle", "fetch-idle", "icache-stall",
                 "hole-wait/kcyc", "issue-wait (cyc)"});
    for (std::size_t m = 0; m < configs.size(); ++m) {
        std::uint64_t cycles = 0, retire_idle = 0, fetch_idle = 0,
                      icache = 0, hole = 0, wait_sum = 0, retired = 0;
        for (std::size_t c = m; c < cells.size(); c += configs.size()) {
            const SimResult &r = cells[c].result;
            cycles += r.counter("core.cycles");
            retire_idle += r.vec("core.retireSlots")[0];
            fetch_idle += r.vec("core.fetchSlots")[0];
            icache += r.counter("fetch.icacheStallCycles");
            hole += r.counter("core.holeWaitCycles");
            wait_sum += r.counter("core.issueWaitSum");
            retired += r.counter("core.retired");
        }
        const double cyc = cycles ? double(cycles) : 1.0;
        acct.row({configs[m].label,
                  fmtDouble(100.0 * double(retire_idle) / cyc, 1) + "%",
                  fmtDouble(100.0 * double(fetch_idle) / cyc, 1) + "%",
                  fmtDouble(100.0 * double(icache) / cyc, 1) + "%",
                  fmtDouble(1000.0 * double(hole) / cyc, 1),
                  fmtDouble(retired ? double(wait_sum) / double(retired)
                                    : 0.0,
                            2)});
    }
    std::printf("Per-stage cycle accounting (suite totals):\n%s\n",
                acct.render().c_str());

    // Host simulation speed: how fast the simulator itself ran. sim_khz
    // is simulated kilocycles per host-wall-clock second; the harmonic
    // mean matches the per-machine summary in the JSON dump.
    TextTable speed;
    speed.header({"machine", "host total", "hmean sim speed"});
    for (std::size_t m = 0; m < configs.size(); ++m) {
        double host = 0.0;
        std::vector<double> khz;
        for (std::size_t c = m; c < cells.size(); c += configs.size()) {
            host += cells[c].result.hostSeconds;
            khz.push_back(cells[c].result.simKhz());
        }
        speed.row({configs[m].label, fmtDouble(host, 2) + " s",
                   fmtSimSpeed(harmonicMean(khz))});
    }
    std::printf("Host simulation speed:\n%s\n", speed.render().c_str());

    // Host-time per-stage profile (--profile): where the simulator's own
    // wall time goes, summed over the suite. exec/lsq are subsets of
    // select, cosim a subset of commit (common/hostprof.hh).
    bool any_profiled = false;
    for (const Cell &c : cells)
        any_profiled = any_profiled || c.profiled;
    if (!any_profiled)
        return;
    TextTable prof;
    std::vector<std::string> phead{"machine"};
    for (unsigned s = 0; s < HostProfiler::NumStages; ++s)
        phead.push_back(HostProfiler::stageName(s));
    phead.push_back("allocs");
    prof.header(phead);
    for (std::size_t m = 0; m < configs.size(); ++m) {
        std::array<double, HostProfiler::NumStages> sec{};
        std::uint64_t allocs = 0;
        bool counted = false;
        for (std::size_t c = m; c < cells.size(); c += configs.size()) {
            if (!cells[c].profiled)
                continue;
            for (unsigned s = 0; s < HostProfiler::NumStages; ++s)
                sec[s] += cells[c].profiler.seconds(s);
            allocs += cells[c].profiler.allocations;
            counted = counted || cells[c].profiler.allocationsCounted;
        }
        std::vector<std::string> row{configs[m].label};
        for (unsigned s = 0; s < HostProfiler::NumStages; ++s)
            row.push_back(fmtDouble(sec[s] * 1e3, 0) + " ms");
        row.push_back(counted ? std::to_string(allocs) : "n/a");
        prof.row(row);
    }
    std::printf("Host per-stage profile (--profile; exec/lsq within "
                "select, cosim within commit):\n%s\n",
                prof.render().c_str());
}

void
printHeadline(const std::vector<MachineConfig> &configs,
              const std::vector<Cell> &cells,
              const std::string &paper_note)
{
    // The comparison only makes sense on the full Baseline / RB-limited
    // / RB-full / Ideal grid; a --machines filter drops it.
    if (configs.size() != 4)
        return;
    std::vector<double> mean(configs.size(), 0.0);
    std::vector<unsigned> count(configs.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const std::size_t m = i % configs.size();
        mean[m] += cells[i].result.ipc();
        ++count[m];
    }
    for (std::size_t m = 0; m < mean.size(); ++m)
        mean[m] /= count[m];
    // Order: Baseline, RB-limited, RB-full, Ideal.
    const double base = mean[0], rblim = mean[1], rbfull = mean[2],
                 ideal = mean[3];
    std::printf("measured: RB-full %+.1f%% vs Baseline; %+.1f%% vs "
                "Ideal; RB-limited %+.1f%% vs RB-full; Ideal %+.1f%% vs "
                "Baseline\n",
                100 * (rbfull / base - 1), 100 * (rbfull / ideal - 1),
                100 * (rblim / rbfull - 1), 100 * (ideal / base - 1));
    std::printf("paper:    %s\n\n", paper_note.c_str());
}

std::vector<MachineConfig>
paperMachines(unsigned width)
{
    return {MachineConfig::make(MachineKind::Baseline, width),
            MachineConfig::make(MachineKind::RbLimited, width),
            MachineConfig::make(MachineKind::RbFull, width),
            MachineConfig::make(MachineKind::Ideal, width)};
}

} // namespace rbsim::bench
