#include "bench_common.hh"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <thread>

#include "common/alloccount.hh"
#include "common/stats.hh"
#include "common/strutil.hh"
#include "sim/report.hh"
#include "trace/tracer.hh"

namespace rbsim::bench
{

// ------------------------------------------------------------- options

namespace
{

[[noreturn]] void
usageDie(const char *prog, const char *why)
{
    std::fprintf(stderr,
                 "%s: %s\n"
                 "usage: %s [--json <path>] [--scale <n>] "
                 "[--machines <label,label,...>] "
                 "[--scheduler wakeup|polled|oracle] "
                 "[--trace <prefix>] [--trace-last <n>] [--profile]\n",
                 prog, why, prog);
    std::exit(2);
}

// The scheduler mode applies to every config a bench builds, including
// ablation grids assembled after parseBenchArgs, so it lives here and is
// applied to a copy of each config right before simulate(). The trace
// options follow the same pattern: the sweep worker consults them for
// every cell.
std::string g_scheduler = "wakeup";
std::string g_trace_prefix;
std::size_t g_trace_last = 0;
bool g_profile = false;

MachineConfig
applyScheduler(MachineConfig cfg)
{
    cfg.polledScheduler = g_scheduler == "polled";
    cfg.wakeupOracle = g_scheduler == "oracle";
    return cfg;
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        if (end > start)
            out.push_back(csv.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

} // namespace

BenchOptions
parseBenchArgs(int &argc, char **argv)
{
    BenchOptions opts;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                usageDie(argv[0],
                         (std::string(flag) + " needs a value").c_str());
            return argv[++i];
        };
        if (std::strcmp(arg, "--json") == 0) {
            opts.jsonPath = value("--json");
        } else if (std::strcmp(arg, "--scale") == 0) {
            const long n = std::strtol(value("--scale"), nullptr, 10);
            if (n < 1)
                usageDie(argv[0], "--scale must be >= 1");
            opts.scale = static_cast<unsigned>(n);
        } else if (std::strcmp(arg, "--machines") == 0) {
            opts.machines = splitCsv(value("--machines"));
            if (opts.machines.empty())
                usageDie(argv[0], "--machines needs at least one label");
        } else if (std::strcmp(arg, "--scheduler") == 0) {
            opts.scheduler = value("--scheduler");
            if (opts.scheduler != "wakeup" &&
                opts.scheduler != "polled" && opts.scheduler != "oracle")
                usageDie(argv[0],
                         "--scheduler must be wakeup, polled or oracle");
            g_scheduler = opts.scheduler;
        } else if (std::strcmp(arg, "--trace") == 0) {
            opts.tracePrefix = value("--trace");
            g_trace_prefix = opts.tracePrefix;
        } else if (std::strcmp(arg, "--trace-last") == 0) {
            const long n =
                std::strtol(value("--trace-last"), nullptr, 10);
            if (n < 1)
                usageDie(argv[0], "--trace-last must be >= 1");
            opts.traceLast = static_cast<std::size_t>(n);
            g_trace_last = opts.traceLast;
        } else if (std::strcmp(arg, "--profile") == 0) {
            opts.profile = true;
            g_profile = true;
            // Per-thread counting; harmless no-op without the allochook
            // library linked in (allocationsCounted stays false).
            alloccount::enable(true);
        } else {
            argv[out++] = argv[i]; // not ours; leave for the caller
        }
    }
    argc = out;
    argv[argc] = nullptr;
    return opts;
}

std::vector<MachineConfig>
filterMachines(std::vector<MachineConfig> configs,
               const BenchOptions &opts)
{
    if (opts.machines.empty())
        return configs;
    std::vector<MachineConfig> kept;
    for (const MachineConfig &c : configs) {
        for (const std::string &want : opts.machines) {
            if (c.label == want) {
                kept.push_back(c);
                break;
            }
        }
    }
    if (kept.empty()) {
        std::fprintf(stderr, "--machines matched no configuration\n");
        std::exit(2);
    }
    return kept;
}

// -------------------------------------------------------------- report

BenchReport::BenchReport(std::string bench_, BenchOptions opts_)
    : bench(std::move(bench_)), opts(std::move(opts_))
{}

void
BenchReport::addCell(const Cell &cell)
{
    cells.push_back(cell);
}

void
BenchReport::addCells(const std::vector<Cell> &more)
{
    cells.insert(cells.end(), more.begin(), more.end());
}

void
BenchReport::addMetric(const std::string &name, double value)
{
    metrics.emplace_back(name, value);
}

void
BenchReport::write() const
{
    if (opts.jsonPath.empty())
        return;

    Json root = Json::object();
    root["schema"] = "rbsim-bench-1";
    root["bench"] = bench;
    root["scale"] = opts.scale;
    root["scheduler"] = opts.scheduler;

    Json machines = Json::array();
    std::vector<std::string> seen;
    for (const Cell &c : cells) {
        bool dup = false;
        for (const std::string &m : seen)
            dup = dup || m == c.machine;
        if (!dup) {
            seen.push_back(c.machine);
            machines.push(c.machine);
        }
    }
    root["machines"] = std::move(machines);

    Json cellArr = Json::array();
    for (const Cell &c : cells) {
        Json jc = Json::object();
        jc["machine"] = c.machine;
        jc["workload"] = c.workload;
        jc["ipc"] = c.result.ipc();
        jc["host_ms"] = c.result.hostSeconds * 1e3;
        jc["sim_khz"] = c.result.simKhz();
        Json stats = Json::object();
        Json counters = Json::object();
        for (const auto &[name, v] : c.result.stats.counters)
            counters[name] = v;
        Json formulas = Json::object();
        for (const auto &[name, v] : c.result.stats.formulas)
            formulas[name] = v;
        Json vectors = Json::object();
        for (const auto &[name, vec] : c.result.stats.vectors) {
            Json a = Json::array();
            for (std::uint64_t v : vec)
                a.push(v);
            vectors[name] = std::move(a);
        }
        stats["counters"] = std::move(counters);
        stats["formulas"] = std::move(formulas);
        stats["vectors"] = std::move(vectors);
        jc["stats"] = std::move(stats);
        if (c.profiled) {
            Json prof = Json::object();
            Json stages = Json::object();
            for (unsigned s = 0; s < HostProfiler::NumStages; ++s) {
                stages[HostProfiler::stageName(s)] =
                    c.profiler.seconds(s) * 1e3; // milliseconds
            }
            prof["stage_ms"] = std::move(stages);
            prof["allocations"] = c.profiler.allocations;
            prof["allocations_counted"] = c.profiler.allocationsCounted;
            jc["profile"] = std::move(prof);
        }
        cellArr.push(std::move(jc));
    }
    root["cells"] = std::move(cellArr);

    Json summary = Json::object();
    Json hmeans = Json::object();
    for (const std::string &m : seen) {
        std::vector<double> ipcs;
        for (const Cell &c : cells) {
            if (c.machine == m)
                ipcs.push_back(c.result.ipc());
        }
        hmeans[m] = harmonicMean(ipcs);
    }
    summary["hmean_ipc"] = std::move(hmeans);
    Json hspeed = Json::object();
    for (const std::string &m : seen) {
        std::vector<double> khz;
        for (const Cell &c : cells) {
            if (c.machine == m)
                khz.push_back(c.result.simKhz());
        }
        hspeed[m] = harmonicMean(khz);
    }
    summary["hmean_sim_khz"] = std::move(hspeed);
    Json jmetrics = Json::object();
    for (const auto &[name, v] : metrics)
        jmetrics[name] = v;
    summary["metrics"] = std::move(jmetrics);
    root["summary"] = std::move(summary);

    std::ofstream out(opts.jsonPath);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", opts.jsonPath.c_str());
        std::exit(1);
    }
    out << root.dump(2) << '\n';
}

// --------------------------------------------------------------- sweep

namespace
{

/** Machine/workload label as a filename fragment. */
std::string
cellTag(std::string s)
{
    for (char &c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
            c != '_') {
            c = '-';
        }
    }
    return s;
}

std::vector<Cell>
sweep(const std::vector<MachineConfig> &configs,
      const std::vector<WorkloadInfo> &workloads, unsigned scale)
{
    struct Task
    {
        const MachineConfig *cfg;
        const WorkloadInfo *wl;
    };
    std::vector<Task> tasks;
    for (const WorkloadInfo &w : workloads) {
        for (const MachineConfig &c : configs)
            tasks.push_back(Task{&c, &w});
    }

    std::vector<Cell> cells(tasks.size());
    std::atomic<std::size_t> next{0};
    // hardware_concurrency() may legitimately report 0 (unknown);
    // always run at least the calling thread.
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned nthreads = std::max(
        1u, std::min<unsigned>(hw ? hw : 1u,
                               static_cast<unsigned>(tasks.size())));

    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= tasks.size())
                return;
            WorkloadParams wp;
            wp.scale = scale;
            const Program prog = tasks[i].wl->build(wp);
            const MachineConfig cfg = applyScheduler(*tasks[i].cfg);

            // Per-cell pipeline tracing (--trace / --trace-last). The
            // tracer is only constructed when asked for, so ordinary
            // benchmarking keeps the untraced hot path.
            std::ofstream trace_out;
            std::unique_ptr<trace::Tracer> tracer;
            std::string cell_file;
            if (!g_trace_prefix.empty() || g_trace_last) {
                const std::string prefix = g_trace_prefix.empty()
                    ? std::string("rbsim-bench-fail")
                    : g_trace_prefix;
                cell_file = prefix + "." + cellTag(cfg.label) + "." +
                            cellTag(tasks[i].wl->name) + ".trace";
                trace::Tracer::Options topts;
                if (!g_trace_last) {
                    trace_out.open(cell_file);
                    if (trace_out)
                        topts.stream = &trace_out;
                }
                topts.ringCap = g_trace_last;
                topts.codeBase = prog.codeBase;
                topts.decodeDepth = cfg.fetchDecodeDepth;
                topts.renameDepth = cfg.renameDepth;
                tracer = std::make_unique<trace::Tracer>(topts);
            }
            auto dump_ring = [&]() {
                if (!tracer || !g_trace_last)
                    return;
                std::ofstream out(cell_file);
                out << tracer->renderRing();
                std::fprintf(stderr,
                             "pipeline trace of last %zu instructions: "
                             "%s\n",
                             tracer->ring().size(), cell_file.c_str());
            };

            SimOptions sopts;
            sopts.tracer = tracer.get();
            HostProfiler prof;
            if (g_profile)
                sopts.profiler = &prof;
            SimResult r;
            try {
                r = simulate(cfg, prog, sopts);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "bench cell %s/%s failed: %s\n",
                             cfg.label.c_str(), tasks[i].wl->name.c_str(),
                             e.what());
                dump_ring();
                std::exit(1);
            }
            if (!r.halted)
                dump_ring();
            cells[i].machine = tasks[i].cfg->label;
            cells[i].workload = tasks[i].wl->name;
            cells[i].result = std::move(r);
            if (g_profile) {
                cells[i].profiler = prof;
                cells[i].profiled = true;
            }
        }
    };
    std::vector<std::thread> pool;
    for (unsigned t = 0; t + 1 < nthreads; ++t)
        pool.emplace_back(worker);
    worker();
    for (std::thread &t : pool)
        t.join();
    return cells;
}

} // namespace

std::vector<Cell>
sweepSuite(const std::vector<MachineConfig> &configs,
           const std::string &suite, unsigned scale)
{
    return sweep(configs, suiteWorkloads(suite), scale);
}

std::vector<Cell>
sweepAll(const std::vector<MachineConfig> &configs, unsigned scale)
{
    return sweep(configs, allWorkloads(), scale);
}

// ------------------------------------------------------------- figures

void
printIpcFigure(const std::string &title,
               const std::vector<MachineConfig> &configs,
               const std::vector<Cell> &cells,
               const std::vector<WorkloadInfo> &workloads)
{
    std::printf("%s", banner(title).c_str());

    TextTable table;
    std::vector<std::string> head{"benchmark"};
    for (const MachineConfig &c : configs)
        head.push_back(c.label);
    table.header(head);

    std::vector<std::vector<double>> per_machine(configs.size());
    std::size_t i = 0;
    for (const WorkloadInfo &w : workloads) {
        std::vector<std::string> row{w.name};
        for (std::size_t m = 0; m < configs.size(); ++m, ++i) {
            const double ipc = cells[i].result.ipc();
            row.push_back(fmtDouble(ipc, 3));
            per_machine[m].push_back(ipc);
        }
        table.row(row);
    }

    std::vector<std::string> hrow{"hmean"};
    std::vector<std::string> arow{"amean"};
    std::vector<double> ameans;
    for (const auto &col : per_machine) {
        hrow.push_back(fmtDouble(harmonicMean(col), 3));
        arow.push_back(fmtDouble(arithmeticMean(col), 3));
        ameans.push_back(arithmeticMean(col));
    }
    table.row(hrow);
    table.row(arow);
    std::printf("%s\n", table.render().c_str());

    // Bar view of the means (the look of the paper's figures).
    double maxmean = 0;
    for (double m : ameans)
        maxmean = std::max(maxmean, m);
    for (std::size_t m = 0; m < configs.size(); ++m) {
        std::printf("  %-12s |%s| %.3f\n", configs[m].label.c_str(),
                    textBar(ameans[m], maxmean, 44).c_str(), ameans[m]);
    }
    std::printf("\n");

    // Per-stage cycle accounting: where each machine's cycles go,
    // summed over the suite. retire-idle / fetch-idle are the share of
    // cycles with zero instructions through that stage; hole-wait is
    // entry-cycles spent blocked only on bypass-availability holes.
    TextTable acct;
    acct.header({"machine", "retire-idle", "fetch-idle", "icache-stall",
                 "hole-wait/kcyc", "issue-wait (cyc)"});
    for (std::size_t m = 0; m < configs.size(); ++m) {
        std::uint64_t cycles = 0, retire_idle = 0, fetch_idle = 0,
                      icache = 0, hole = 0, wait_sum = 0, retired = 0;
        for (std::size_t c = m; c < cells.size(); c += configs.size()) {
            const SimResult &r = cells[c].result;
            cycles += r.counter("core.cycles");
            retire_idle += r.vec("core.retireSlots")[0];
            fetch_idle += r.vec("core.fetchSlots")[0];
            icache += r.counter("fetch.icacheStallCycles");
            hole += r.counter("core.holeWaitCycles");
            wait_sum += r.counter("core.issueWaitSum");
            retired += r.counter("core.retired");
        }
        const double cyc = cycles ? double(cycles) : 1.0;
        acct.row({configs[m].label,
                  fmtDouble(100.0 * double(retire_idle) / cyc, 1) + "%",
                  fmtDouble(100.0 * double(fetch_idle) / cyc, 1) + "%",
                  fmtDouble(100.0 * double(icache) / cyc, 1) + "%",
                  fmtDouble(1000.0 * double(hole) / cyc, 1),
                  fmtDouble(retired ? double(wait_sum) / double(retired)
                                    : 0.0,
                            2)});
    }
    std::printf("Per-stage cycle accounting (suite totals):\n%s\n",
                acct.render().c_str());

    // Host simulation speed: how fast the simulator itself ran. sim_khz
    // is simulated kilocycles per host-wall-clock second; the harmonic
    // mean matches the per-machine summary in the JSON dump.
    TextTable speed;
    speed.header({"machine", "host total", "hmean sim speed"});
    for (std::size_t m = 0; m < configs.size(); ++m) {
        double host = 0.0;
        std::vector<double> khz;
        for (std::size_t c = m; c < cells.size(); c += configs.size()) {
            host += cells[c].result.hostSeconds;
            khz.push_back(cells[c].result.simKhz());
        }
        speed.row({configs[m].label, fmtDouble(host, 2) + " s",
                   fmtSimSpeed(harmonicMean(khz))});
    }
    std::printf("Host simulation speed:\n%s\n", speed.render().c_str());

    // Host-time per-stage profile (--profile): where the simulator's own
    // wall time goes, summed over the suite. exec/lsq are subsets of
    // select, cosim a subset of commit (common/hostprof.hh).
    bool any_profiled = false;
    for (const Cell &c : cells)
        any_profiled = any_profiled || c.profiled;
    if (!any_profiled)
        return;
    TextTable prof;
    std::vector<std::string> phead{"machine"};
    for (unsigned s = 0; s < HostProfiler::NumStages; ++s)
        phead.push_back(HostProfiler::stageName(s));
    phead.push_back("allocs");
    prof.header(phead);
    for (std::size_t m = 0; m < configs.size(); ++m) {
        std::array<double, HostProfiler::NumStages> sec{};
        std::uint64_t allocs = 0;
        bool counted = false;
        for (std::size_t c = m; c < cells.size(); c += configs.size()) {
            if (!cells[c].profiled)
                continue;
            for (unsigned s = 0; s < HostProfiler::NumStages; ++s)
                sec[s] += cells[c].profiler.seconds(s);
            allocs += cells[c].profiler.allocations;
            counted = counted || cells[c].profiler.allocationsCounted;
        }
        std::vector<std::string> row{configs[m].label};
        for (unsigned s = 0; s < HostProfiler::NumStages; ++s)
            row.push_back(fmtDouble(sec[s] * 1e3, 0) + " ms");
        row.push_back(counted ? std::to_string(allocs) : "n/a");
        prof.row(row);
    }
    std::printf("Host per-stage profile (--profile; exec/lsq within "
                "select, cosim within commit):\n%s\n",
                prof.render().c_str());
}

void
printHeadline(const std::vector<MachineConfig> &configs,
              const std::vector<Cell> &cells,
              const std::string &paper_note)
{
    // The comparison only makes sense on the full Baseline / RB-limited
    // / RB-full / Ideal grid; a --machines filter drops it.
    if (configs.size() != 4)
        return;
    std::vector<double> mean(configs.size(), 0.0);
    std::vector<unsigned> count(configs.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const std::size_t m = i % configs.size();
        mean[m] += cells[i].result.ipc();
        ++count[m];
    }
    for (std::size_t m = 0; m < mean.size(); ++m)
        mean[m] /= count[m];
    // Order: Baseline, RB-limited, RB-full, Ideal.
    const double base = mean[0], rblim = mean[1], rbfull = mean[2],
                 ideal = mean[3];
    std::printf("measured: RB-full %+.1f%% vs Baseline; %+.1f%% vs "
                "Ideal; RB-limited %+.1f%% vs RB-full; Ideal %+.1f%% vs "
                "Baseline\n",
                100 * (rbfull / base - 1), 100 * (rbfull / ideal - 1),
                100 * (rblim / rbfull - 1), 100 * (ideal / base - 1));
    std::printf("paper:    %s\n\n", paper_note.c_str());
}

std::vector<MachineConfig>
paperMachines(unsigned width)
{
    return {MachineConfig::make(MachineKind::Baseline, width),
            MachineConfig::make(MachineKind::RbLimited, width),
            MachineConfig::make(MachineKind::RbFull, width),
            MachineConfig::make(MachineKind::Ideal, width)};
}

} // namespace rbsim::bench
