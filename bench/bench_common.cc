#include "bench_common.hh"

#include <atomic>
#include <cstdio>
#include <thread>

#include "common/stats.hh"
#include "common/strutil.hh"
#include "sim/report.hh"

namespace rbsim::bench
{

namespace
{

std::vector<Cell>
sweep(const std::vector<MachineConfig> &configs,
      const std::vector<WorkloadInfo> &workloads, unsigned scale)
{
    struct Task
    {
        const MachineConfig *cfg;
        const WorkloadInfo *wl;
    };
    std::vector<Task> tasks;
    for (const WorkloadInfo &w : workloads) {
        for (const MachineConfig &c : configs)
            tasks.push_back(Task{&c, &w});
    }

    std::vector<Cell> cells(tasks.size());
    std::atomic<std::size_t> next{0};
    const unsigned nthreads =
        std::min<unsigned>(std::thread::hardware_concurrency(),
                           static_cast<unsigned>(tasks.size()));

    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= tasks.size())
                return;
            WorkloadParams wp;
            wp.scale = scale;
            const Program prog = tasks[i].wl->build(wp);
            SimResult r = simulate(*tasks[i].cfg, prog);
            cells[i].machine = tasks[i].cfg->label;
            cells[i].workload = tasks[i].wl->name;
            cells[i].result = std::move(r);
        }
    };
    std::vector<std::thread> pool;
    for (unsigned t = 0; t + 1 < std::max(1u, nthreads); ++t)
        pool.emplace_back(worker);
    worker();
    for (std::thread &t : pool)
        t.join();
    return cells;
}

} // namespace

std::vector<Cell>
sweepSuite(const std::vector<MachineConfig> &configs,
           const std::string &suite, unsigned scale)
{
    return sweep(configs, suiteWorkloads(suite), scale);
}

std::vector<Cell>
sweepAll(const std::vector<MachineConfig> &configs, unsigned scale)
{
    return sweep(configs, allWorkloads(), scale);
}

void
printIpcFigure(const std::string &title,
               const std::vector<MachineConfig> &configs,
               const std::vector<Cell> &cells,
               const std::vector<WorkloadInfo> &workloads)
{
    std::printf("%s", banner(title).c_str());

    TextTable table;
    std::vector<std::string> head{"benchmark"};
    for (const MachineConfig &c : configs)
        head.push_back(c.label);
    table.header(head);

    std::vector<std::vector<double>> per_machine(configs.size());
    std::size_t i = 0;
    for (const WorkloadInfo &w : workloads) {
        std::vector<std::string> row{w.name};
        for (std::size_t m = 0; m < configs.size(); ++m, ++i) {
            const double ipc = cells[i].result.ipc();
            row.push_back(fmtDouble(ipc, 3));
            per_machine[m].push_back(ipc);
        }
        table.row(row);
    }

    std::vector<std::string> hrow{"hmean"};
    std::vector<std::string> arow{"amean"};
    std::vector<double> ameans;
    for (const auto &col : per_machine) {
        hrow.push_back(fmtDouble(harmonicMean(col), 3));
        arow.push_back(fmtDouble(arithmeticMean(col), 3));
        ameans.push_back(arithmeticMean(col));
    }
    table.row(hrow);
    table.row(arow);
    std::printf("%s\n", table.render().c_str());

    // Bar view of the means (the look of the paper's figures).
    double maxmean = 0;
    for (double m : ameans)
        maxmean = std::max(maxmean, m);
    for (std::size_t m = 0; m < configs.size(); ++m) {
        std::printf("  %-12s |%s| %.3f\n", configs[m].label.c_str(),
                    textBar(ameans[m], maxmean, 44).c_str(), ameans[m]);
    }
    std::printf("\n");
}

void
printHeadline(const std::vector<MachineConfig> &configs,
              const std::vector<Cell> &cells,
              const std::string &paper_note)
{
    std::vector<double> mean(configs.size(), 0.0);
    std::vector<unsigned> count(configs.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const std::size_t m = i % configs.size();
        mean[m] += cells[i].result.ipc();
        ++count[m];
    }
    for (std::size_t m = 0; m < mean.size(); ++m)
        mean[m] /= count[m];
    // Order: Baseline, RB-limited, RB-full, Ideal.
    const double base = mean[0], rblim = mean[1], rbfull = mean[2],
                 ideal = mean[3];
    std::printf("measured: RB-full %+.1f%% vs Baseline; %+.1f%% vs "
                "Ideal; RB-limited %+.1f%% vs RB-full; Ideal %+.1f%% vs "
                "Baseline\n",
                100 * (rbfull / base - 1), 100 * (rbfull / ideal - 1),
                100 * (rblim / rbfull - 1), 100 * (ideal / base - 1));
    std::printf("paper:    %s\n\n", paper_note.c_str());
}

std::vector<MachineConfig>
paperMachines(unsigned width)
{
    return {MachineConfig::make(MachineKind::Baseline, width),
            MachineConfig::make(MachineKind::RbLimited, width),
            MachineConfig::make(MachineKind::RbFull, width),
            MachineConfig::make(MachineKind::Ideal, width)};
}

} // namespace rbsim::bench
