/**
 * @file
 * Reproduces paper Figure 10: IPC of the 8-wide machines on the
 * SPECint95(-like) benchmarks.
 */

#include "bench_common.hh"

int
main()
{
    using namespace rbsim;
    using namespace rbsim::bench;
    const auto configs = paperMachines(8);
    const auto cells = sweepSuite(configs, "spec95");
    printIpcFigure("Figure 10: IPC, 8-wide machines, SPECint95-like",
                   configs, cells, suiteWorkloads("spec95"));
    printHeadline(configs, cells,
                  "RB +9% vs Baseline, within 2% of Ideal; RB-limited "
                  "within 2% of RB-full");
    return 0;
}
