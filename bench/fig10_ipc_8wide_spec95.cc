/**
 * @file
 * Reproduces paper Figure 10: IPC of the 8-wide machines on the
 * SPECint95(-like) benchmarks.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace rbsim;
    using namespace rbsim::bench;
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const auto configs = filterMachines(paperMachines(8), opts);
    const auto cells = sweepSuite(configs, "spec95", opts.scale);
    printIpcFigure("Figure 10: IPC, 8-wide machines, SPECint95-like",
                   configs, cells, suiteWorkloads("spec95"));
    printHeadline(configs, cells,
                  "RB +9% vs Baseline, within 2% of Ideal; RB-limited "
                  "within 2% of RB-full");
    BenchReport report("fig10_ipc_8wide_spec95", opts);
    report.addCells(cells);
    report.write();
    return 0;
}
