/**
 * @file
 * SMARTS sampling demonstration and acceptance harness
 * (docs/PERFORMANCE.md): run workloads on the Figure 12 machine grid
 * both sampled (checkpointed fast-forward + detailed windows sharded
 * across the worker pool) and — under --verify — in full detail, and
 * report mean IPC with its 95% CI next to the exact number.
 *
 * Extra flags on top of the shared bench set:
 *   --windows <n>     target number of measured windows (default 10);
 *                     the period is the workload's dynamic length / n,
 *                     with a quarter-period detailed warmup and a
 *                     half-period measured window
 *   --workloads <csv> workload-name filter (default: whole suite)
 *   --suite <name>    workload suite (default "spec95")
 *   --verify          also run every cell in full detail and exit 1 if
 *                     any |sampled - full| exceeds the reported 95% CI
 *                     (the repo's sampled-vs-full acceptance gate)
 *
 * The JSON dump's sampled cells carry "ci95"/"windows", which switches
 * scripts/bench_diff.py to its CI-overlap gate for those cells.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "func/interp.hh"
#include "serve/sampled.hh"
#include "serve/service.hh"
#include "sim/sampling.hh"

namespace
{

std::uint64_t
dynLength(const rbsim::Program &prog)
{
    rbsim::Interp interp(prog);
    while (!interp.halted())
        interp.run(1u << 20);
    return interp.instsExecuted();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rbsim;
    using namespace rbsim::bench;
    BenchOptions opts = parseBenchArgs(argc, argv);

    std::uint64_t windows = 10;
    std::string suite = "spec95";
    std::vector<std::string> workloadFilter;
    bool verify = false;
    for (int i = 1; i < argc;) {
        const auto take = [&](const char *flag, std::string &into) {
            if (std::strcmp(argv[i], flag) != 0)
                return false;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            into = argv[i + 1];
            for (int j = i; j + 2 < argc; ++j)
                argv[j] = argv[j + 2];
            argc -= 2;
            return true;
        };
        std::string v;
        if (std::strcmp(argv[i], "--verify") == 0) {
            verify = true;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
        } else if (take("--windows", v)) {
            windows = std::strtoull(v.c_str(), nullptr, 10);
            if (!windows) {
                std::fprintf(stderr, "--windows must be positive\n");
                return 2;
            }
        } else if (take("--suite", v)) {
            suite = v;
        } else if (take("--workloads", v)) {
            std::size_t start = 0;
            while (start <= v.size()) {
                const std::size_t comma = v.find(',', start);
                const std::size_t end =
                    comma == std::string::npos ? v.size() : comma;
                if (end > start)
                    workloadFilter.push_back(
                        v.substr(start, end - start));
                start = end + 1;
            }
        } else {
            std::fprintf(stderr, "unknown flag %s\n", argv[i]);
            return 2;
        }
    }

    std::vector<MachineConfig> configs =
        filterMachines(paperMachines(4), opts);
    for (MachineConfig &cfg : configs) {
        cfg.polledScheduler = opts.scheduler == "polled";
        cfg.wakeupOracle = opts.scheduler == "oracle";
    }

    std::vector<WorkloadInfo> suiteList = suiteWorkloads(suite);
    std::vector<WorkloadInfo> workloads;
    for (const WorkloadInfo &wl : suiteList) {
        bool keep = workloadFilter.empty();
        for (const std::string &name : workloadFilter)
            keep = keep || wl.name == name;
        if (keep)
            workloads.push_back(wl);
    }
    if (workloads.empty()) {
        std::fprintf(stderr, "no workloads selected\n");
        return 2;
    }

    serve::SimService &service = serve::SimService::instance();
    BenchReport report("sampled_sweep", opts);
    unsigned ciMisses = 0;

    std::printf("SMARTS sampling, %llu-window regimen, %s scheduler "
                "(%u workers)\n",
                static_cast<unsigned long long>(windows),
                opts.scheduler.c_str(), service.workers());
    std::printf("%-12s %-10s %10s %14s %8s %10s %10s\n", "machine",
                "workload", verify ? "full-ipc" : "-", "sampled-ipc",
                "windows", "ff-insts", "host-ms");

    for (const WorkloadInfo &wl : workloads) {
        WorkloadParams wp;
        wp.scale = opts.scale;
        const Program prog = wl.build(wp);
        const std::uint64_t len = dynLength(prog);

        SamplingOptions sopts;
        sopts.periodInsts =
            std::max<std::uint64_t>(len / windows, 64);
        sopts.warmupInsts = sopts.periodInsts / 4;
        sopts.measureInsts = sopts.periodInsts / 2;

        for (const MachineConfig &cfg : configs) {
            const serve::SampledOutcome sampled =
                serve::runSampled(service, cfg, prog, sopts);
            if (!sampled.ok) {
                std::fprintf(stderr, "%s/%s: %s\n", cfg.label.c_str(),
                             wl.name.c_str(), sampled.error.c_str());
                return 1;
            }
            report.addCell(sampledCell(sampled.result));

            char fullCol[16] = "-";
            if (verify) {
                const SimResult full = simulate(cfg, prog);
                std::snprintf(fullCol, sizeof(fullCol), "%.4f",
                              full.ipc());
                const double err =
                    full.ipc() > sampled.result.ipcMean
                        ? full.ipc() - sampled.result.ipcMean
                        : sampled.result.ipcMean - full.ipc();
                if (err > sampled.result.ipcCi95) {
                    ++ciMisses;
                    std::fprintf(stderr,
                                 "%s/%s: sampled %.4f +/- %.4f misses "
                                 "full %.4f\n",
                                 cfg.label.c_str(), wl.name.c_str(),
                                 sampled.result.ipcMean,
                                 sampled.result.ipcCi95, full.ipc());
                }
            }
            std::printf("%-12s %-10s %10s %7.4f +/- %.4f %5llu %10llu "
                        "%10.1f\n",
                        cfg.label.c_str(), wl.name.c_str(), fullCol,
                        sampled.result.ipcMean, sampled.result.ipcCi95,
                        static_cast<unsigned long long>(
                            sampled.result.windows),
                        static_cast<unsigned long long>(
                            sampled.result.ffInsts),
                        sampled.result.hostSeconds * 1e3);
        }
    }

    report.write();
    if (ciMisses) {
        std::fprintf(stderr,
                     "sampled_sweep: FAIL — %u cell(s) outside the "
                     "reported 95%% CI\n",
                     ciMisses);
        return 1;
    }
    if (verify)
        std::printf("sampled_sweep: every sampled cell within its 95%% "
                    "CI of the full-detail IPC\n");
    return 0;
}
