/**
 * @file
 * Functional-interpreter throughput micro-benchmark
 * (docs/PERFORMANCE.md §8): host MIPS of every architectural execution
 * path, measured over a fixed set of workload-generator programs:
 *
 *   reference       decode-every-step oracle (Interp::stepReference)
 *   step            predecoded single-step with full StepRecord
 *                   materialization (the co-simulation path)
 *   runfast         record-free threaded-dispatch loop (Interp::runFast)
 *                   under whichever dispatch strategy the build/env
 *                   picked — this is what sim/fastfwd drives
 *   runfast-switch  the same loop pinned to the switch fallback
 *                   (execDecodedLoop<false>, what RBSIM_FORCE_SWITCH=1
 *                   selects), so the computed-goto win is visible
 *   fastfwd         FastForward: runfast + cache/predictor warming sink
 *
 * Results go into the shared "rbsim-bench-1" JSON (--json) as synthetic
 * cells: machine = path name, workload = generator preset, sim_khz =
 * kilo instructions per second (so MIPS = sim_khz / 1e3), which is what
 * the CI --speed-gate lane ratchets against the committed
 * BENCH_interp_mips.json baseline. The committed baseline also carries
 * the pre-predecode "reference" rows, so the tentpole speedup claim
 * (runfast >= 3x reference) is checkable from one file; the
 * "runfast_over_reference_hmean" summary metric states it directly.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/strutil.hh"
#include "core/machine_config.hh"
#include "func/interp.hh"
#include "func/predecode.hh"
#include "sim/fastfwd.hh"
#include "sim/report.hh"
#include "workloads/gen/opstream.hh"
#include "workloads/workload.hh"

#include "bench_common.hh"

namespace
{

using namespace rbsim;
using Clock = std::chrono::steady_clock;

/** Programs benchmarked: two paper workloads (what sampling campaigns
 * actually fast-forward through) plus the generator presets the
 * predecode parity tests lockstep — a skewed key-value mix, a
 * dependent pointer chase, a half-taken branch sweep, and the
 * RB-adversarial carry chains. */
struct Bench
{
    const char *name;
    bool gen; //!< generator preset vs named paper workload
};
const Bench benches[] = {{"compress", false}, {"go", false},
                         {"ycsb-a", true},    {"chase-dl1", true},
                         {"branch-0.50", true}, {"rb-adversarial", true}};

/** Instructions per measurement slice between halt checks / resets. */
constexpr std::uint64_t sliceInsts = 1u << 20;
/** Minimum wall time per cell for a stable rate. */
constexpr double minSeconds = 0.25;

/** Keeps architectural results observable. */
std::uint64_t g_sink = 0;

/**
 * Time `body` — which executes up to sliceInsts instructions and
 * returns how many actually ran (resetting itself on HALT) — in
 * independent slices until enough wall time has accumulated, and
 * report the *fastest* slice: on shared/noisy hosts the best observed
 * rate is the stable estimator (preemption and frequency dips only
 * ever slow a slice down), the same reasoning as taking the minimum
 * time in repetition-based benchmark harnesses.
 * Returns {insts, seconds} of that best slice.
 */
template <typename F>
std::pair<std::uint64_t, double>
measure(F &&body)
{
    body(); // warm up: predecode cache, first-touch pages
    std::uint64_t bestInsts = 0;
    double bestSec = 1.0;
    double total = 0.0;
    do {
        const auto t0 = Clock::now();
        const std::uint64_t insts = body();
        const double sec =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (insts > 0 && sec > 0.0 &&
            double(insts) / sec > double(bestInsts) / bestSec) {
            bestInsts = insts;
            bestSec = sec;
        }
        total += sec;
    } while (total < minSeconds);
    return {bestInsts, bestSec};
}

/** One stepper-loop cell: run `step` one instruction at a time. */
template <typename StepFn>
std::pair<std::uint64_t, double>
measureStepper(const Program &prog, StepFn &&step)
{
    Interp interp(prog);
    return measure([&] {
        std::uint64_t done = 0;
        while (done < sliceInsts) {
            if (interp.halted()) {
                g_sink ^= interp.reg(1);
                interp.reset(prog);
            }
            g_sink ^= step(interp).regValue;
            ++done;
        }
        return done;
    });
}

/** Pinned-strategy cell: drive execDecodedLoop<UseGoto> directly over
 * a private register file and memory image (the same harness the
 * parity tests use), bypassing the runtime strategy pick. */
template <bool UseGoto>
std::pair<std::uint64_t, double>
measurePinned(const Program &prog)
{
    const auto dp = decodeProgram(prog);
    std::vector<Word> slots(dp->slotCount(), 0);
    for (std::size_t i = 0; i < dp->pool.size(); ++i)
        slots[numArchRegs + i] = dp->pool[i];
    MemImage mem;
    mem.loadProgram(prog);

    ExecCtx cx;
    cx.regs = slots.data();
    cx.mem = &mem;
    cx.dp = dp.get();
    cx.pc = prog.entry;

    NullExecSink sink;
    return measure([&] {
        if (cx.halted) {
            std::fill(slots.begin(), slots.begin() + numArchRegs, 0);
            slots[dp->scratch] = 0;
            mem.reset();
            mem.loadProgram(prog);
            cx.pc = prog.entry;
            cx.steps = 0;
            cx.halted = false;
        }
        const std::uint64_t done =
            execDecodedLoop<UseGoto>(cx, sliceInsts, sink);
        g_sink ^= cx.regs[1];
        return done;
    });
}

struct Row
{
    std::string workload;
    double referenceMips = 0.0;
    double stepMips = 0.0;
    double runfastMips = 0.0;
    double switchMips = 0.0;
    double fastfwdMips = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace rbsim::bench;
    const BenchOptions opts = parseBenchArgs(argc, argv);
    (void)argc;
    (void)argv;

    BenchReport report("interp_mips", opts);
    std::vector<Row> rows;

    std::printf("%s",
                banner("Functional interpreter throughput (MIPS), "
                       "dispatch: " +
                       std::string(dispatchName()))
                    .c_str());

    // Warming sink geometry for the fastfwd row: the 4-wide baseline.
    const MachineConfig ffCfg =
        MachineConfig::make(MachineKind::Baseline, 4);

    double speedupHmeanDen = 0.0;
    for (const Bench &b : benches) {
        const Program prog =
            b.gen ? gen::buildGenProgram(gen::genPreset(b.name),
                                         WorkloadParams{})
                  : findWorkload(b.name).build(WorkloadParams{});
        Row row;
        row.workload = b.name;
        auto cell = [&](const char *machine, double &mips,
                        std::pair<std::uint64_t, double> m) {
            report.addCell(
                throughputCell(machine, b.name, m.first, m.second));
            mips = double(m.first) / m.second / 1e6;
        };

        cell("reference", row.referenceMips,
             measureStepper(prog, [](Interp &i) {
                 return i.stepReference();
             }));
        cell("step", row.stepMips, measureStepper(prog, [](Interp &i) {
                 return i.step();
             }));
        cell("runfast", row.runfastMips, [&] {
            Interp interp(prog);
            return measure([&] {
                if (interp.halted()) {
                    g_sink ^= interp.reg(1);
                    interp.reset(prog);
                }
                return interp.runFast(sliceInsts);
            });
        }());
#if RBSIM_HAS_COMPUTED_GOTO
        cell("runfast-switch", row.switchMips,
             measurePinned<false>(prog));
#else
        // No computed goto in this build: runfast already is the
        // switch loop; re-measuring it as a separate row would only
        // add baseline noise for the speed gate.
        row.switchMips = row.runfastMips;
#endif
        cell("fastfwd", row.fastfwdMips, [&] {
            FastForward ff(ffCfg, prog);
            return measure([&] {
                if (ff.halted())
                    ff.reset(prog);
                return ff.run(sliceInsts);
            });
        }());

        speedupHmeanDen += row.referenceMips / row.runfastMips;
        rows.push_back(row);
    }

    TextTable t;
    t.header({"workload", "reference", "step", "runfast",
              "runfast-switch", "fastfwd", "runfast/ref"});
    for (const Row &r : rows) {
        t.row({r.workload, fmtDouble(r.referenceMips, 1),
               fmtDouble(r.stepMips, 1), fmtDouble(r.runfastMips, 1),
               fmtDouble(r.switchMips, 1), fmtDouble(r.fastfwdMips, 1),
               fmtDouble(r.runfastMips / r.referenceMips, 2) + "x"});
    }
    std::printf("%s", t.render().c_str());

    const double hmean = double(std::size(benches)) / speedupHmeanDen;
    std::printf("runfast over reference (hmean): %.2fx\n", hmean);
    report.addMetric("runfast_over_reference_hmean", hmean);
    if (g_sink == 0xdeadbeefcafebabeull)
        std::printf("\n"); // keep g_sink and the loops alive

    report.write();
    return 0;
}
