/**
 * @file
 * Extension bench: dependence-aware instruction steering (the paper's
 * section 4.2 future work: "Further restrictions in bypass networks may
 * be made with little loss in IPC with the help of instruction
 * steering").
 *
 * Compares the paper's round-robin pair steering against steering each
 * instruction toward its producer's scheduler, on the full machines and
 * on bypass-restricted machines where locality should matter most.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/stats.hh"
#include "common/strutil.hh"
#include "sim/report.hh"

namespace
{

double
hmeanIpc(rbsim::MachineConfig cfg, const char *steering_tag,
         unsigned scale, rbsim::bench::BenchReport &report)
{
    cfg.label += std::string(" ") + steering_tag;
    const auto cells = rbsim::bench::sweepAll({cfg}, scale);
    std::vector<double> ipcs;
    for (const auto &c : cells)
        ipcs.push_back(c.result.ipc());
    report.addCells(cells);
    return rbsim::harmonicMean(ipcs);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rbsim;
    using namespace rbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv);

    std::printf("%s",
                banner("Extension: dependence-aware steering "
                       "(hmean IPC, all 20 benchmarks, 8-wide)").c_str());

    BenchReport report("ablation_steering", opts);

    struct Machine
    {
        const char *name;
        MachineConfig cfg;
    };
    std::vector<Machine> machines;
    machines.push_back({"Ideal (full bypass)",
                        MachineConfig::make(MachineKind::Ideal, 8)});
    machines.push_back({"RB-limited",
                        MachineConfig::make(MachineKind::RbLimited, 8)});
    machines.push_back({"Ideal No-2,3 (1 level only)",
                        MachineConfig::makeIdealLimited(8, 0b001)});

    TextTable t;
    t.header({"machine", "round-robin pairs", "class-partition (4.3)",
              "dependence-aware", "gain (dep vs rr)"});
    for (Machine &m : machines) {
        m.cfg.steering = Steering::RoundRobinPairs;
        const double rr = hmeanIpc(m.cfg, "rr", opts.scale, report);
        m.cfg.steering = Steering::ClassPartition;
        const double cp = hmeanIpc(m.cfg, "class", opts.scale, report);
        m.cfg.steering = Steering::DependenceAware;
        const double da = hmeanIpc(m.cfg, "dep", opts.scale, report);
        t.row({m.name, fmtDouble(rr, 3), fmtDouble(cp, 3),
               fmtDouble(da, 3),
               fmtDouble(100.0 * (da / rr - 1.0), 1) + "%"});
        std::fflush(stdout);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("expected: steering helps most when the bypass network "
                "is most restricted (chains stay near their one "
                "forwarding level and inside one cluster).\n");

    report.write();
    return 0;
}
