/**
 * @file
 * Ablation: scheduler partitioning of the 128-entry window on the 8-wide
 * Ideal machine. The paper fixes 4 x 32-entry select-2 schedulers; this
 * bench trades partition count against per-scheduler select width at a
 * constant total of 8 selections per cycle, quantifying what the
 * partitioned (cheaper, faster-clock) organization costs in IPC — the
 * design-space context of the paper's select-free-scheduling citation.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/stats.hh"
#include "common/strutil.hh"
#include "sim/report.hh"

int
main(int argc, char **argv)
{
    using namespace rbsim;
    using namespace rbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv);

    std::printf("%s",
                banner("Ablation: window partitioning, 8-wide Ideal "
                       "(hmean IPC, all 20 benchmarks)").c_str());

    struct Part
    {
        unsigned schedulers;
        unsigned entries;
        unsigned select;
    };
    const Part parts[] = {
        {1, 128, 8}, // monolithic window, select-8
        {2, 64, 4},
        {4, 32, 2},  // the paper's organization
        {8, 16, 1},
    };

    BenchReport report("ablation_partition", opts);

    TextTable t;
    t.header({"organization", "hmean IPC", "vs paper's 4x32"});
    double paper_ipc = 0;
    std::vector<double> results;
    for (const Part &p : parts) {
        MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 8);
        cfg.numSchedulers = p.schedulers;
        cfg.schedEntries = p.entries;
        cfg.selectWidth = p.select;
        cfg.label = std::to_string(p.schedulers) + "x" +
                    std::to_string(p.entries) + " select-" +
                    std::to_string(p.select);
        const auto cells = sweepAll({cfg}, opts.scale);
        std::vector<double> ipcs;
        for (const Cell &c : cells)
            ipcs.push_back(c.result.ipc());
        const double h = harmonicMean(ipcs);
        results.push_back(h);
        if (p.schedulers == 4)
            paper_ipc = h;
        report.addCells(cells);
        std::fflush(stdout);
    }
    for (std::size_t i = 0; i < std::size(parts); ++i) {
        const Part &p = parts[i];
        t.row({std::to_string(p.schedulers) + " x " +
                   std::to_string(p.entries) + ", select-" +
                   std::to_string(p.select),
               fmtDouble(results[i], 3),
               fmtDouble(100.0 * (results[i] / paper_ipc - 1.0), 1) +
                   "%"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("note: clusters follow the scheduler partition "
                "(schedulers 0..n/2-1 = cluster 0), so coarser\n"
                "partitions also see fewer cross-cluster forwards; the "
                "monolithic select-8 window is the\nidealized (and "
                "unbuildably slow) upper bound.\n");

    report.write();
    return 0;
}
