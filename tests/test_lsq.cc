/**
 * @file
 * Targeted tests for the ring-buffer LSQ (src/mem/lsq.cc): wraparound
 * past the physical capacity, squash in the middle of a wrap, sequence
 * recycling after a squash, and a randomized equivalence check of the
 * tag-array search against a straightforward reference walk of the
 * queue (the semantics the old deque implementation had).
 */

#include <gtest/gtest.h>

#include <deque>
#include <optional>

#include "common/rng.hh"
#include "mem/lsq.hh"

namespace rbsim
{
namespace
{

TEST(LsqRing, WrapAroundKeepsSeqLookupsExact)
{
    // Capacity 4 (pow2): cycle far more entries than that through the
    // queue so positions wrap the ring many times.
    LoadStoreQueue q(4, 64);
    std::uint64_t head = 1, tail = 1;
    for (int round = 0; round < 100; ++round) {
        while (tail - head < 4) {
            q.insert(tail, (tail % 3) == 0);
            ++tail;
        }
        EXPECT_FALSE(q.hasSpace());
        // Address the youngest entry, then drain two from the head.
        q.setAddress(tail - 1, 0x1000 + 8 * (tail - 1), 8);
        for (int k = 0; k < 2; ++k) {
            if ((head % 3) == 0) {
                q.setAddress(head, 0x2000, 8);
                q.setStoreData(head, head);
            }
            const LsqEntry e = q.retire(head);
            EXPECT_EQ(e.seq, head);
            EXPECT_EQ(e.isStore, (head % 3) == 0);
            ++head;
        }
    }
    EXPECT_EQ(q.size(), 2u);
}

TEST(LsqRing, StoreForwardAcrossWrappedRing)
{
    // Force the store side-ring to wrap, then check forwarding still
    // finds the youngest containing store.
    LoadStoreQueue q(4, 256);
    std::uint64_t seq = 1;
    // Churn stores through the queue to advance the ring positions.
    for (int i = 0; i < 10; ++i) {
        q.insert(seq, true);
        q.setAddress(seq, 0x100, 8);
        q.setStoreData(seq, 0xdead0000 + seq);
        q.retire(seq);
        ++seq;
    }
    // Two stores to the same address, then a load: forward from the
    // younger store.
    const std::uint64_t s1 = seq++, s2 = seq++, ld = seq++;
    q.insert(s1, true);
    q.insert(s2, true);
    q.insert(ld, false);
    q.setAddress(s1, 0x200, 8);
    q.setStoreData(s1, 0x1111);
    q.setAddress(s2, 0x200, 8);
    q.setStoreData(s2, 0x2222);
    EXPECT_TRUE(q.olderStoreAddrsKnown(ld));
    const LoadSearch r = q.searchForLoad(ld, 0x200, 8);
    EXPECT_TRUE(r.mayIssue);
    EXPECT_TRUE(r.forwarded);
    EXPECT_EQ(r.data, 0x2222u);
}

TEST(LsqRing, SquashMidWrapDropsYoungAndAllowsReuse)
{
    LoadStoreQueue q(8, 64);
    // Wrap a few times first.
    std::uint64_t seq = 1;
    for (int i = 0; i < 20; ++i) {
        q.insert(seq, true);
        q.setAddress(seq, 0x40, 8);
        q.setStoreData(seq, seq);
        q.retire(seq);
        ++seq;
    }
    const std::uint64_t base = seq;
    q.insert(base + 0, true);
    q.insert(base + 1, false);
    q.insert(base + 2, true);
    q.insert(base + 3, false);
    q.setAddress(base + 0, 0x300, 8);
    q.setStoreData(base + 0, 7);

    // Squash everything younger than base+1 (branch at base+1).
    q.squashAfter(base + 1);
    EXPECT_EQ(q.size(), 2u);

    // Recycled seqs: re-insert base+2.. as different kinds.
    q.insert(base + 2, false);
    q.insert(base + 3, true);
    q.setAddress(base + 3, 0x308, 8);

    // The squashed store at base+2 must not block or serve the new load
    // at base+2; the only older store is base+0 (disjoint address).
    EXPECT_TRUE(q.olderStoreAddrsKnown(base + 2));
    const LoadSearch r = q.searchForLoad(base + 2, 0x308, 8);
    EXPECT_TRUE(r.mayIssue);
    EXPECT_FALSE(r.forwarded);

    // Forward from the re-inserted store at base+3 once its data lands.
    q.insert(base + 4, false);
    q.setStoreData(base + 3, 0xabcd);
    const LoadSearch r2 = q.searchForLoad(base + 4, 0x308, 8);
    EXPECT_TRUE(r2.mayIssue);
    EXPECT_TRUE(r2.forwarded);
    EXPECT_EQ(r2.data, 0xabcdu);
}

TEST(LsqRing, UnknownOlderStoreAddressBlocksDisambiguation)
{
    LoadStoreQueue q(8, 64);
    q.insert(1, true);
    q.insert(2, false);
    EXPECT_FALSE(q.olderStoreAddrsKnown(2));
    EXPECT_FALSE(q.searchForLoad(2, 0x100, 8).mayIssue);
    q.setAddress(1, 0x500, 8);
    EXPECT_TRUE(q.olderStoreAddrsKnown(2));
    EXPECT_TRUE(q.searchForLoad(2, 0x100, 8).mayIssue);
}

// ------------------------------------------------------------------
// Randomized equivalence: the tag-array search must agree with a
// straightforward reference model (a deque of entries scanned linearly,
// the shape of the pre-ring implementation).

struct RefEntry
{
    std::uint64_t seq;
    bool isStore;
    bool addrKnown = false;
    bool dataReady = false;
    Addr addr = 0;
    unsigned size = 0;
    Word data = 0;
};

struct RefLsq
{
    std::deque<RefEntry> entries;

    bool
    olderStoreAddrsKnown(std::uint64_t seq) const
    {
        for (const RefEntry &e : entries) {
            if (e.seq >= seq)
                break;
            if (e.isStore && !e.addrKnown)
                return false;
        }
        return true;
    }

    LoadSearch
    search(std::uint64_t seq, Addr lo, unsigned size) const
    {
        LoadSearch out;
        const Addr hi = lo + size;
        // Youngest older store first.
        for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
            if (it->seq >= seq || !it->isStore)
                continue;
            if (!it->addrKnown)
                return out;
            const Addr slo = it->addr, shi = it->addr + it->size;
            if (shi <= lo || slo >= hi)
                continue;
            if (slo <= lo && shi >= hi) {
                if (!it->dataReady)
                    return out;
                out.mayIssue = true;
                out.forwarded = true;
                Word v = it->data >> ((lo - slo) * 8);
                if (size == 4)
                    v &= 0xffffffffull;
                out.data = v;
                return out;
            }
            return out; // partial overlap
        }
        out.mayIssue = true;
        return out;
    }
};

TEST(LsqRing, RandomizedAgainstReferenceModel)
{
    Rng rng(0xfeedbeef);
    for (int trial = 0; trial < 50; ++trial) {
        LoadStoreQueue q(16, 256);
        RefLsq ref;
        std::uint64_t next_seq = 1;

        for (int step = 0; step < 400; ++step) {
            const unsigned op = static_cast<unsigned>(rng.next() % 6);
            if (op <= 1 && q.size() < 16) {
                // Insert a load or store.
                const bool is_store = rng.next() & 1;
                const std::uint64_t s = next_seq++;
                q.insert(s, is_store);
                ref.entries.push_back(RefEntry{s, is_store});
            } else if (op == 2 && !ref.entries.empty()) {
                // Give a random addressless entry its address.
                const std::size_t i =
                    static_cast<std::size_t>(rng.next()) %
                    ref.entries.size();
                RefEntry &e = ref.entries[i];
                if (!e.addrKnown) {
                    const unsigned size = rng.next() & 1 ? 8 : 4;
                    // Small address pool to force overlaps.
                    const Addr a =
                        0x1000 + (rng.next() % 8) * 4;
                    const Addr aligned = a & ~Addr{size - 1};
                    e.addrKnown = true;
                    e.addr = aligned;
                    e.size = size;
                    q.setAddress(e.seq, aligned, size);
                }
            } else if (op == 3 && !ref.entries.empty()) {
                // Deliver data for a random addressed store.
                const std::size_t i =
                    static_cast<std::size_t>(rng.next()) %
                    ref.entries.size();
                RefEntry &e = ref.entries[i];
                if (e.isStore && e.addrKnown && !e.dataReady) {
                    e.dataReady = true;
                    e.data = rng.next();
                    q.setStoreData(e.seq, e.data);
                }
            } else if (op == 4 && !ref.entries.empty()) {
                // Retire the head if it looks complete.
                const RefEntry &h = ref.entries.front();
                if (!h.isStore || (h.addrKnown && h.dataReady)) {
                    q.retire(h.seq);
                    ref.entries.pop_front();
                }
            } else if (op == 5 && !ref.entries.empty()) {
                // Squash a random tail.
                const std::size_t keep =
                    static_cast<std::size_t>(rng.next()) %
                    ref.entries.size();
                const std::uint64_t branch = ref.entries[keep].seq;
                q.squashAfter(branch);
                while (!ref.entries.empty() &&
                       ref.entries.back().seq > branch) {
                    ref.entries.pop_back();
                }
                next_seq = branch + 1;
            }

            // Cross-check every addressed load against both models.
            for (const RefEntry &e : ref.entries) {
                if (e.isStore || !e.addrKnown)
                    continue;
                ASSERT_EQ(q.olderStoreAddrsKnown(e.seq),
                          ref.olderStoreAddrsKnown(e.seq))
                    << "trial " << trial << " step " << step << " seq "
                    << e.seq;
                const LoadSearch a = q.searchForLoad(e.seq, e.addr,
                                                     e.size);
                const LoadSearch b = ref.search(e.seq, e.addr, e.size);
                ASSERT_EQ(a.mayIssue, b.mayIssue)
                    << "trial " << trial << " step " << step << " seq "
                    << e.seq;
                ASSERT_EQ(a.forwarded, b.forwarded)
                    << "trial " << trial << " step " << step << " seq "
                    << e.seq;
                if (a.forwarded) {
                    ASSERT_EQ(a.data, b.data);
                }
            }
        }
    }
}

} // namespace
} // namespace rbsim
