/**
 * @file
 * Unit tests for the differential fuzzing subsystem itself: the
 * reproducible Rng streams, the recipe generator's coverage, the
 * disassemble/assemble round trip repro files rely on, the redundant
 * encoding rewriter, the repro serialization, and — via planted bugs —
 * the detect/shrink pipeline end to end.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/json.hh"
#include "fuzz/corpus.hh"
#include "fuzz/fuzzer.hh"
#include "fuzz/generator.hh"
#include "fuzz/shrink.hh"
#include "isa/assembler.hh"
#include "isa/disasm.hh"
#include "isa/opclass.hh"
#include "rb/convert.hh"
#include "sim/simulator.hh"

namespace rbsim
{
namespace
{

using namespace rbsim::fuzz;

// ---------------------------------------------------------------- rng

TEST(FuzzRng, StateRoundTrip)
{
    Rng a(123);
    a.next();
    a.next();
    Rng b = Rng::fromState(a.state());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(FuzzRng, ForkIsIndependentAndReproducible)
{
    Rng a(9), b(9);
    Rng childA = a.fork();
    Rng childB = b.fork();
    // Forking is deterministic...
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(childA.next(), childB.next());
    // ...advances the parent identically...
    EXPECT_EQ(a.state(), b.state());
    // ...and the child stream differs from the parent's continuation.
    Rng parent = Rng::fromState(a.state());
    Rng child = a.fork();
    bool differs = false;
    for (int i = 0; i < 8 && !differs; ++i)
        differs = parent.next() != child.next();
    EXPECT_TRUE(differs);
}

TEST(FuzzRng, MixSeedGivesDistinctPerCaseStreams)
{
    // The fuzzer's per-case streams must not collide across nearby case
    // indices or depend on anything but (seed, index).
    std::map<std::uint64_t, std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        const std::uint64_t s = Rng::mixSeed(42, i);
        EXPECT_EQ(Rng::mixSeed(42, i), s);
        EXPECT_TRUE(seen.emplace(s, i).second)
            << "collision between case " << i << " and " << seen[s];
    }
}

// ---------------------------------------------------------- generator

TEST(FuzzGenerator, DefaultMixCoversAllKindsAndTable1Rows)
{
    std::array<unsigned, numOpKinds> kind_seen{};
    std::array<unsigned, numTable1Rows> row_seen{};
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        Rng rng(seed);
        const ProgRecipe recipe =
            generateRecipe(rng, GenOptions());
        for (const BodyOp &op : recipe.body)
            ++kind_seen[static_cast<unsigned>(op.kind)];
        const Program prog = lowerRecipe(recipe);
        for (const Inst &inst : prog.code)
            ++row_seen[static_cast<unsigned>(table1Row(inst.op))];
    }
    for (unsigned k = 0; k < numOpKinds; ++k) {
        EXPECT_GT(kind_seen[k], 0u)
            << "op kind never generated: "
            << opKindName(static_cast<OpKind>(k));
    }
    for (unsigned r = 0; r < numTable1Rows; ++r) {
        EXPECT_GT(row_seen[r], 0u)
            << "Table 1 row never generated: "
            << table1RowLabel(static_cast<Table1Row>(r));
    }
}

TEST(FuzzGenerator, PresetsShapeTheMix)
{
    Rng rng(3);
    const ProgRecipe arith =
        generateRecipe(rng, GenOptions::preset("arith"));
    for (const BodyOp &op : arith.body) {
        EXPECT_TRUE(op.kind == OpKind::Arith || op.kind == OpKind::Mul ||
                    op.kind == OpKind::Shift || op.kind == OpKind::Lda ||
                    op.kind == OpKind::Store)
            << opKindName(op.kind);
    }
    EXPECT_THROW(GenOptions::preset("nope"), std::invalid_argument);
}

TEST(FuzzGenerator, StreamPresetsBridgeTheWorkloadGenerators)
{
    // The workload-stream presets route recipe bodies through the
    // gen:: op streams. Every one must still lower to a structurally
    // terminating program, and the rb-adversarial preset must be
    // shift-chain heavy (its whole point).
    for (const char *name :
         {"ycsb", "pointer-chase", "branch-entropy", "rb-adversarial"}) {
        const GenOptions opts = GenOptions::preset(name);
        EXPECT_TRUE(opts.useStream) << name;
        Rng rng(17);
        const ProgRecipe recipe = generateRecipe(rng, opts);
        EXPECT_FALSE(recipe.body.empty()) << name;
        const Program prog = lowerRecipe(recipe);
        const MachineConfig cfg =
            MachineConfig::make(MachineKind::Baseline, 8);
        SimOptions sopts;
        sopts.maxCycles = 3'000'000;
        EXPECT_TRUE(simulate(cfg, prog, sopts).halted) << name;
    }

    Rng rng(23);
    const ProgRecipe adv =
        generateRecipe(rng, GenOptions::preset("rb-adversarial"));
    unsigned shifts = 0;
    for (const BodyOp &op : adv.body)
        shifts += op.kind == OpKind::Shift;
    EXPECT_GT(shifts, adv.body.size() / 4);
}

TEST(FuzzGenerator, GenOptionsJsonRoundTrip)
{
    // Default options round-trip...
    const GenOptions dflt;
    EXPECT_TRUE(genOptionsFromJson(genOptionsToJson(dflt)) == dflt);
    // ...and so does every preset, including the stream-backed ones
    // (whose embedded GenConfig must survive the trip).
    for (const std::string &name : GenOptions::presetNames()) {
        const GenOptions opts = GenOptions::preset(name);
        const GenOptions back =
            genOptionsFromJson(genOptionsToJson(opts));
        EXPECT_TRUE(back == opts) << name;
    }
    EXPECT_THROW(genOptionsFromJson(Json::parse("{\"bogus\": 1}")),
                 std::invalid_argument);
}

TEST(FuzzGenerator, ProgramsTerminateStructurally)
{
    // Every generated program must reach HALT on every machine; run a
    // couple on the baseline as a cheap structural check (the cosim
    // oracle and test_random_programs cover the full matrix).
    for (std::uint64_t seed : {101ull, 102ull}) {
        const Program prog = generateProgram(seed);
        const MachineConfig cfg =
            MachineConfig::make(MachineKind::Baseline, 8);
        SimOptions opts;
        opts.maxCycles = 3'000'000;
        EXPECT_TRUE(simulate(cfg, prog, opts).halted) << seed;
    }
}

TEST(FuzzGenerator, RandomConfigSpansTheSpace)
{
    Rng rng(5);
    bool saw_limited = false, saw_noholes = false, saw_steer = false;
    for (int i = 0; i < 200; ++i) {
        const MachineConfig cfg = randomConfig(rng);
        EXPECT_TRUE(cfg.width == 4 || cfg.width == 8);
        saw_limited |= cfg.bypassLevelMask != 0b111;
        saw_noholes |= !cfg.holeAwareScheduling;
        saw_steer |= cfg.steering != Steering::RoundRobinPairs;
    }
    EXPECT_TRUE(saw_limited);
    EXPECT_TRUE(saw_noholes);
    EXPECT_TRUE(saw_steer);
}

// ----------------------------------------------- disassembly round trip

/** Flatten a program's data segments to addr -> byte. */
std::map<Addr, std::uint8_t>
flatData(const Program &prog)
{
    std::map<Addr, std::uint8_t> out;
    for (const DataSegment &seg : prog.data) {
        for (std::size_t i = 0; i < seg.bytes.size(); ++i)
            out[seg.base + i] = seg.bytes[i];
    }
    return out;
}

TEST(FuzzDisasm, GeneratedProgramsRoundTripThroughAssembler)
{
    // Repro files store the program as assembly text, so
    // disassembleProgram -> assemble must reproduce the exact
    // instruction stream, entry point, and data image.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const Program prog = generateProgram(seed);
        const Program back = assemble(disassembleProgram(prog));
        ASSERT_EQ(back.code.size(), prog.code.size()) << seed;
        for (std::size_t i = 0; i < prog.code.size(); ++i)
            EXPECT_TRUE(back.code[i] == prog.code[i])
                << "seed " << seed << " inst " << i;
        EXPECT_EQ(back.entry, prog.entry) << seed;
        EXPECT_EQ(flatData(back), flatData(prog)) << seed;
    }
}

// ------------------------------------------------- redundant encodings

TEST(FuzzEncodings, RandomRedundantEncodingsPreserveTheValue)
{
    Rng rng(17);
    for (int i = 0; i < 2000; ++i) {
        const Word w = rng.next();
        const RbNum enc = redundantEncodingOf(w, rng, 64);
        ASSERT_EQ(enc.plus() & enc.minus(), 0u);
        EXPECT_EQ(enc.toTc(), w);
        EXPECT_EQ(enc.signNegative(), static_cast<SWord>(w) < 0);
        EXPECT_EQ(enc.isZero(), w == 0);
    }
    // Rewrites actually leave the canonical encoding most of the time.
    bool non_canonical = false;
    for (int i = 0; i < 50 && !non_canonical; ++i) {
        const Word w = rng.next();
        non_canonical = !(redundantEncodingOf(w, rng, 64) ==
                          RbNum::fromTc(w));
    }
    EXPECT_TRUE(non_canonical);
}

// -------------------------------------------------------------- oracles

TEST(FuzzOracles, NamesAndConstruction)
{
    const auto all = makeOracles();
    ASSERT_EQ(all.size(), oracleNames().size());
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i]->name(), oracleNames()[i]);
    EXPECT_THROW(makeOracles({"bogus"}), std::invalid_argument);
    EXPECT_THROW(parsePlant("bogus"), std::invalid_argument);
    EXPECT_EQ(parsePlant(""), Plant::None);
    EXPECT_EQ(parsePlant("sched-bypass-widen"), Plant::SchedBypassWiden);
}

TEST(FuzzOracles, ValueOraclesPassOnHonestDatapath)
{
    for (const char *name : {"rbalu", "slice", "roundtrip"}) {
        const auto oracle = std::move(makeOracles({name}).front());
        const OracleResult r = oracle->runSeed(99, 512);
        EXPECT_FALSE(r.failed) << name << ": " << r.detail;
    }
}

TEST(FuzzOracles, SnapshotDiffPinpointsTheFirstDifference)
{
    StatSnapshot a, b;
    a.counters["core.cycles"] = 10;
    b.counters["core.cycles"] = 10;
    EXPECT_EQ(snapshotDiff(a, b), "");
    b.counters["core.cycles"] = 11;
    const std::string d = snapshotDiff(a, b);
    EXPECT_NE(d.find("core.cycles"), std::string::npos) << d;
}

// ------------------------------------------------------------- shrinker

/** First seed whose default-mix recipe trips the opcode-pair plant. */
std::pair<ProgRecipe, std::vector<MachineConfig>>
findOpcodePairCase(const Oracle &oracle)
{
    for (std::uint64_t seed = 1; seed < 200; ++seed) {
        Rng rng(seed);
        std::vector<MachineConfig> configs = oracle.pickConfigs(rng);
        ProgRecipe recipe = generateRecipe(rng, GenOptions());
        if (oracle.runProgram(lowerRecipe(recipe), configs).failed)
            return {std::move(recipe), std::move(configs)};
    }
    ADD_FAILURE() << "no seed tripped the planted opcode pair";
    return {};
}

TEST(FuzzShrinker, PlantedOpcodePairShrinksToMinimalProgram)
{
    const auto oracle = std::move(
        makeOracles({"cosim"}, Plant::CosimOpcodePair).front());
    auto [recipe, configs] = findOpcodePairCase(*oracle);

    const ShrinkOutcome out =
        shrinkRecipe(*oracle, configs, recipe, 400);
    ASSERT_TRUE(out.reproduced);

    const Program prog = lowerRecipe(out.recipe);
    // The plant fires iff a MULQ and an STQ are both present, so the
    // minimum is exactly one of each plus their register setup. Known
    // minimal shape: <= 2 body ops and <= 12 instructions.
    EXPECT_LE(out.recipe.body.size() + (out.recipe.subs.empty()
                  ? 0 : out.recipe.subs[0].ops.size()), 2u);
    EXPECT_LE(prog.code.size(), 12u);
    bool mul = false, stq = false;
    for (const Inst &inst : prog.code) {
        mul |= inst.op == Opcode::MULQ;
        stq |= inst.op == Opcode::STQ;
    }
    EXPECT_TRUE(mul);
    EXPECT_TRUE(stq);
    // Structural sugar must all be gone.
    EXPECT_EQ(out.recipe.loopTrips, 1u);
    EXPECT_FALSE(out.recipe.hasJumpTable);
    EXPECT_EQ(out.recipe.foldStores, 0u);
    // And the shrunk case still fails.
    EXPECT_TRUE(oracle->runProgram(prog, configs).failed);
}

TEST(FuzzShrinker, PassingRecipeIsReturnedUntouched)
{
    const auto oracle = std::move(makeOracles({"cosim"}).front());
    Rng rng(4);
    const std::vector<MachineConfig> configs =
        oracle->pickConfigs(rng);
    ProgRecipe recipe = generateRecipe(rng, GenOptions());
    const ShrinkOutcome out =
        shrinkRecipe(*oracle, configs, recipe, 10);
    EXPECT_FALSE(out.reproduced);
    EXPECT_EQ(out.evals, 1u);
    EXPECT_EQ(lowerRecipe(out.recipe).code.size(),
              lowerRecipe(recipe).code.size());
}

// ------------------------------------------------------ planted sched bug

TEST(FuzzPipeline, SchedBypassWidenPlantIsCaughtAndShrunk)
{
    // End to end: the silently widened bypass network must produce a
    // scheduler divergence, and the driver must shrink it to a small
    // repro that replays clean without the plant.
    FuzzOptions opts;
    opts.oracles = {"sched"};
    opts.plant = Plant::SchedBypassWiden;
    opts.iterations = 4;
    opts.jobs = 2;
    opts.seed = 11;
    const FuzzSummary summary = runFuzz(opts);
    ASSERT_FALSE(summary.failures.empty());
    for (const FuzzFailure &f : summary.failures) {
        EXPECT_EQ(f.oracle, "sched");
        EXPECT_GT(f.programInsts, 0u);
        EXPECT_NE(f.detail.find("divergence"), std::string::npos)
            << f.detail;
        // The repro replays clean on the honest simulator and fails
        // again under the plant.
        EXPECT_FALSE(replayRepro(f.repro).failed);
        EXPECT_TRUE(
            replayRepro(f.repro, Plant::SchedBypassWiden).failed);
    }
}

// ---------------------------------------------------------------- corpus

TEST(FuzzCorpus, ConfigJsonRoundTrip)
{
    MachineConfig cfg = MachineConfig::makeIdealLimited(4, 0b010);
    cfg.holeAwareScheduling = false;
    cfg.steering = Steering::DependenceAware;
    cfg.label += "/depsteer";
    const MachineConfig back = configFromJson(configToJson(cfg));
    EXPECT_EQ(back.kind, cfg.kind);
    EXPECT_EQ(back.width, cfg.width);
    EXPECT_EQ(back.bypassLevelMask, cfg.bypassLevelMask);
    EXPECT_EQ(back.holeAwareScheduling, cfg.holeAwareScheduling);
    EXPECT_EQ(back.steering, cfg.steering);
    EXPECT_EQ(back.label, cfg.label);
}

TEST(FuzzCorpus, ReproRoundTripAndReplay)
{
    ReproFile repro;
    repro.oracle = "cosim";
    repro.seed = 0xdeadbeef;
    repro.note = "smoke";
    repro.configs = {MachineConfig::make(MachineKind::Baseline, 4),
                     MachineConfig::make(MachineKind::RbFull, 8)};
    repro.asmText = disassembleProgram(generateProgram(3));

    const ReproFile back = parseRepro(formatRepro(repro));
    EXPECT_EQ(back.oracle, repro.oracle);
    EXPECT_EQ(back.seed, repro.seed);
    EXPECT_EQ(back.note, repro.note);
    ASSERT_EQ(back.configs.size(), 2u);
    EXPECT_EQ(back.configs[1].kind, MachineKind::RbFull);
    ASSERT_TRUE(back.programLevel());
    // The whole repro file is valid assembly + comments; replay runs it
    // through the real cosim oracle and must be clean.
    EXPECT_FALSE(replayRepro(back).failed);

    // Value-level repro: no program, replays from the seed.
    ReproFile value;
    value.oracle = "rbalu";
    value.seed = 77;
    value.valueIters = 128;
    const ReproFile vback = parseRepro(formatRepro(value));
    EXPECT_FALSE(vback.programLevel());
    EXPECT_EQ(vback.valueIters, 128u);
    EXPECT_FALSE(replayRepro(vback).failed);

    EXPECT_THROW(parseRepro("halt\n"), std::invalid_argument);
}

TEST(FuzzCorpus, GenLineRoundTripsThePresetThroughReproFiles)
{
    // A repro minted under a bias preset records the preset's knobs in
    // a "gen:" metadata line; parsing must hand the exact options back
    // so the recorded (seed, preset) pair re-derives the recipe.
    ReproFile repro;
    repro.oracle = "cosim";
    repro.seed = 99;
    repro.genJson =
        genOptionsToJson(GenOptions::preset("rb-adversarial")).dump();
    repro.configs = {MachineConfig::make(MachineKind::RbLimited, 8)};
    Rng rng(Rng::mixSeed(repro.seed, 0));
    repro.asmText = disassembleProgram(lowerRecipe(
        generateRecipe(rng, GenOptions::preset("rb-adversarial"))));

    const std::string text = formatRepro(repro);
    EXPECT_NE(text.find("; rbsim-repro-gen: "), std::string::npos);
    const ReproFile back = parseRepro(text);
    EXPECT_EQ(back.genJson, repro.genJson);
    EXPECT_TRUE(genOptionsFromJson(Json::parse(back.genJson)) ==
                GenOptions::preset("rb-adversarial"));
    EXPECT_FALSE(replayRepro(back).failed);

    // A corrupt gen line fails the parse, not a later re-generation.
    EXPECT_THROW(
        parseRepro("; rbsim-repro-oracle: cosim\n"
                   "; rbsim-repro-gen: {\"bogus\": 1}\n"),
        std::invalid_argument);
}

TEST(FuzzCorpus, WindowLimitsRoundTripAndReplayWindowed)
{
    // Checkpoint-restartable replay: a deep failure's repro records a
    // window (fast-forward skip + detailed instruction budget) so
    // replaying it does not resimulate the whole prefix. The window is
    // part of the failure's identity and must round-trip through the
    // file.
    ReproFile repro;
    repro.oracle = "cosim";
    repro.seed = 5;
    repro.configs = {MachineConfig::make(MachineKind::Baseline, 4),
                     MachineConfig::make(MachineKind::RbFull, 8)};
    repro.asmText = R"(
            ldiq r1, 5000
            ldiq r2, 0
        loop:
            addq r2, r1, r2
            subq r1, #1, r1
            bne r1, loop
            halt
    )";
    repro.maxInsts = 1000;
    repro.resumeSkip = 2000;

    const std::string text = formatRepro(repro);
    EXPECT_NE(text.find("; rbsim-repro-max-insts: 1000"),
              std::string::npos);
    EXPECT_NE(text.find("; rbsim-repro-resume-skip: 2000"),
              std::string::npos);
    const ReproFile back = parseRepro(text);
    EXPECT_EQ(back.maxInsts, 1000u);
    EXPECT_EQ(back.resumeSkip, 2000u);
    const OracleResult r = replayRepro(back);
    EXPECT_FALSE(r.failed) << r.detail;

    // A window lying entirely past the program's end is a vacuous
    // pass: the shrinker evaluates candidates under the same limits,
    // so a repro can never move its failure out of its own window.
    ReproFile deep = back;
    deep.resumeSkip = 10'000'000;
    EXPECT_FALSE(replayRepro(deep).failed);
}

// ---------------------------------------------------------------- driver

TEST(FuzzDriver, DeterministicAcrossJobCounts)
{
    // The (case, seed) mapping is independent of the worker count, so a
    // planted campaign finds the same failure seeds with 1 or 4 jobs.
    FuzzOptions opts;
    opts.oracles = {"cosim"};
    opts.plant = Plant::CosimOpcodePair;
    opts.iterations = 12;
    opts.seed = 21;
    opts.shrink = false;
    opts.jobs = 1;
    const FuzzSummary one = runFuzz(opts);
    opts.jobs = 4;
    const FuzzSummary four = runFuzz(opts);
    ASSERT_EQ(one.failures.size(), four.failures.size());
    for (std::size_t i = 0; i < one.failures.size(); ++i)
        EXPECT_EQ(one.failures[i].seed, four.failures[i].seed);
    EXPECT_EQ(one.cases, four.cases);
}

TEST(FuzzDriver, CleanCampaignReportsOk)
{
    FuzzOptions opts;
    opts.oracles = {"slice", "roundtrip"};
    opts.iterations = 6;
    opts.jobs = 2;
    opts.valueIters = 256;
    const FuzzSummary summary = runFuzz(opts);
    EXPECT_TRUE(summary.ok()) << summary.format();
    EXPECT_EQ(summary.cases, 6u);
    // The JSON summary parses and reflects the tallies.
    const Json doc = Json::parse(summary.toJson());
    EXPECT_TRUE(doc.find("ok")->asBool());
    EXPECT_EQ(doc.find("cases")->asU64(), 6u);
}

} // namespace
} // namespace rbsim
