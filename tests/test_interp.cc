/**
 * @file
 * Tests for the functional reference interpreter: loops, memory, calls,
 * computed jumps, and the memory image.
 */

#include <gtest/gtest.h>

#include "func/interp.hh"
#include "isa/assembler.hh"
#include "isa/builder.hh"

namespace rbsim
{
namespace
{

TEST(MemImage, ReadWriteRoundTrip)
{
    MemImage m;
    m.write64(0x1000, 0x1122334455667788ull);
    EXPECT_EQ(m.read64(0x1000), 0x1122334455667788ull);
    EXPECT_EQ(m.read32(0x1000), 0x55667788u);
    EXPECT_EQ(m.read32(0x1004), 0x11223344u);
    EXPECT_EQ(m.read8(0x1007), 0x11u);
    m.write32(0x1004, 0xdeadbeefu);
    EXPECT_EQ(m.read64(0x1000), 0xdeadbeef55667788ull);
}

TEST(MemImage, UntouchedMemoryReadsZero)
{
    MemImage m;
    EXPECT_EQ(m.read64(0xdead0000), 0u);
    EXPECT_EQ(m.residentPages(), 0u);
}

TEST(Interp, CountdownLoop)
{
    const Program p = assemble(R"(
            ldiq r1, 100
            ldiq r2, 0
        loop:
            addq r2, r1, r2
            subq r1, #1, r1
            bne r1, loop
            halt
    )");
    Interp in(p);
    in.run(10000);
    EXPECT_TRUE(in.halted());
    EXPECT_EQ(in.reg(2), 5050u); // sum 1..100
}

TEST(Interp, MemorySumLoop)
{
    const Program p = assemble(R"(
        .org 0x20000
        .quad 5, 10, 15, 20, 25
            ldiq r1, 0x20000
            ldiq r2, 5
            ldiq r3, 0
        loop:
            ldq r4, 0(r1)
            addq r3, r4, r3
            lda r1, 8(r1)
            subq r2, #1, r2
            bne r2, loop
            stq r3, 0(r1)
            halt
    )");
    Interp in(p);
    in.run(10000);
    EXPECT_TRUE(in.halted());
    EXPECT_EQ(in.reg(3), 75u);
    EXPECT_EQ(in.mem().read64(0x20028), 75u);
}

TEST(Interp, LongwordLoadSignExtends)
{
    const Program p = assemble(R"(
        .org 0x20000
        .quad 0xffffffff
            ldiq r1, 0x20000
            ldl r2, 0(r1)
            halt
    )");
    Interp in(p);
    in.run(100);
    EXPECT_EQ(static_cast<SWord>(in.reg(2)), -1);
}

TEST(Interp, StoreLongTruncates)
{
    const Program p = assemble(R"(
            ldiq r1, 0x20000
            ldiq r2, 0x11223344aabbccdd
            stl r2, 0(r1)
            ldq r3, 0(r1)
            halt
    )");
    Interp in(p);
    in.run(100);
    EXPECT_EQ(in.reg(3), 0xaabbccddull);
}

TEST(Interp, SubroutineCallAndReturn)
{
    const Program p = assemble(R"(
        .entry main
        double:
            addq r1, r1, r1
            ret r26
        main:
            ldiq r1, 21
            bsr r26, double
            halt
    )");
    Interp in(p);
    in.run(100);
    EXPECT_TRUE(in.halted());
    EXPECT_EQ(in.reg(1), 42u);
}

TEST(Interp, ComputedJumpThroughTable)
{
    // Build a jump table of code byte addresses in memory, load one, and
    // jump through it.
    CodeBuilder cb("jumptable");
    const Label case0 = cb.newLabel();
    const Label case1 = cb.newLabel();
    const Label done = cb.newLabel();
    const Label table_fill = cb.newLabel();

    // r1 = selector (1), r2 = table base.
    cb.ldiq(R(1), 1);
    cb.ldiq(R(2), 0x50000);
    cb.bind(table_fill);
    // Load the target address and jump.
    cb.op3(Opcode::S8ADDQ, R(1), R(2), R(3));
    cb.load(Opcode::LDQ, R(4), 0, R(3));
    cb.jmp(R(31), R(4));
    cb.bind(case0);
    cb.ldiq(R(5), 100);
    cb.br(done);
    cb.bind(case1);
    cb.ldiq(R(5), 200);
    cb.bind(done);
    cb.halt();
    Program p = cb.finish();

    // Table: entries point at case0 (index 5) and case1 (index 7).
    p.addDataWords(0x50000, {p.byteAddrOf(5), p.byteAddrOf(7)});

    Interp in(p);
    in.run(100);
    EXPECT_TRUE(in.halted());
    EXPECT_EQ(in.reg(5), 200u);
}

TEST(Interp, CmovAndCompare)
{
    const Program p = assemble(R"(
            ldiq r1, -5
            ldiq r2, 7
            cmplt r1, r2, r3      ; r3 = 1
            ldiq r4, 999
            cmovne r3, r2, r4     ; r4 = 7
            cmoveq r3, r1, r4     ; unchanged
            halt
    )");
    Interp in(p);
    in.run(100);
    EXPECT_EQ(in.reg(3), 1u);
    EXPECT_EQ(in.reg(4), 7u);
}

TEST(Interp, ZeroRegisterIgnoresWrites)
{
    const Program p = assemble(R"(
            ldiq r31, 55
            addq r31, #7, r1
            halt
    )");
    Interp in(p);
    in.run(100);
    EXPECT_EQ(in.reg(31), 0u);
    EXPECT_EQ(in.reg(1), 7u);
}

TEST(Interp, RunOffCodeEndHalts)
{
    const Program p = assemble("nop\nnop");
    Interp in(p);
    in.run(100);
    EXPECT_TRUE(in.halted());
    EXPECT_EQ(in.instsExecuted(), 2u);
}

TEST(Interp, JmpToNonCodeAddressThrowsStructuredError)
{
    // A JMP whose register target lies outside the code image is a
    // program bug, not a model bug: it must raise a catchable
    // InterpError in every build type (it was a Release no-op assert
    // once), from the predecoded paths and the reference alike.
    const Program p = assemble(R"(
            ldiq r4, 0xdead0000
            jmp r26, r4
            halt
    )");

    for (int path = 0; path < 3; ++path) {
        Interp in(p);
        try {
            switch (path) {
              case 0:
                in.step();
                in.step();
                break;
              case 1:
                in.stepReference();
                in.stepReference();
                break;
              default:
                in.runFast(100);
                break;
            }
            FAIL() << "bad JMP did not throw (path " << path << ")";
        } catch (const InterpError &e) {
            EXPECT_EQ(e.pcIndex, 1u) << path;
            EXPECT_EQ(e.target, 0xdead0000u) << path;
            EXPECT_NE(std::string(e.what()).find("non-code"),
                      std::string::npos)
                << path;
        }
        // Defined post-throw state on every path: the return-address
        // write landed, the PC still points at the faulting JMP, and
        // its step is uncounted.
        EXPECT_EQ(in.reg(26), p.byteAddrOf(2)) << path;
        EXPECT_EQ(in.pc(), 1u) << path;
        EXPECT_EQ(in.instsExecuted(), 1u) << path;
        EXPECT_FALSE(in.halted()) << path;
    }
}

TEST(Interp, JmpToMisalignedCodeAddressThrows)
{
    // In-range but not 4-byte aligned is just as dead.
    CodeBuilder cb("misaligned-jmp");
    cb.ldiq(R(4), 0); // patched below
    cb.jmp(R(31), R(4));
    cb.halt();
    Program p = cb.finish();
    p.code[0].imm64 = static_cast<std::int64_t>(p.byteAddrOf(2) + 2);

    Interp in(p);
    EXPECT_THROW(in.runFast(10), InterpError);
    EXPECT_EQ(in.pc(), 1u);
}

TEST(Interp, StepRecordsStores)
{
    const Program p = assemble(R"(
            ldiq r1, 0x20008
            ldiq r2, 77
            stq r2, 8(r1)
            halt
    )");
    Interp in(p);
    in.step();
    in.step();
    const StepRecord rec = in.step();
    EXPECT_TRUE(rec.wroteMem);
    EXPECT_EQ(rec.memAddr, 0x20010u);
    EXPECT_EQ(rec.memValue, 77u);
}

} // namespace
} // namespace rbsim
