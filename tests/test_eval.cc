/**
 * @file
 * Tests for functional instruction semantics: directed checks of evalOp
 * and the central property that the redundant binary datapath (evalOpRb)
 * is value-equivalent to two's complement for every opcode it implements
 * (paper section 3.6).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "isa/eval.hh"
#include "rb/rbalu.hh"
#include "isa/opclass.hh"

namespace rbsim
{
namespace
{

Inst
mk3(Opcode op, unsigned ra = 1, unsigned rb = 2, unsigned rc = 3)
{
    Inst i;
    i.op = op;
    i.ra = static_cast<std::uint8_t>(ra);
    i.rb = static_cast<std::uint8_t>(rb);
    i.rc = static_cast<std::uint8_t>(rc);
    return i;
}

TEST(Eval, DirectedArithmetic)
{
    Operands ops;
    ops.a = 7;
    ops.b = 5;
    EXPECT_EQ(evalOp(mk3(Opcode::ADDQ), ops, 0).value, 12u);
    EXPECT_EQ(evalOp(mk3(Opcode::SUBQ), ops, 0).value, 2u);
    EXPECT_EQ(evalOp(mk3(Opcode::S4ADDQ), ops, 0).value, 33u);
    EXPECT_EQ(evalOp(mk3(Opcode::S8SUBQ), ops, 0).value, 51u);
    EXPECT_EQ(evalOp(mk3(Opcode::MULQ), ops, 0).value, 35u);
}

TEST(Eval, LongwordOpsSignExtend)
{
    Operands ops;
    ops.a = 0x7fffffff;
    ops.b = 1;
    EXPECT_EQ(evalOp(mk3(Opcode::ADDL), ops, 0).value,
              0xffffffff80000000ull);
    ops.a = 0x100000000ull; // bits above 31 ignored by ADDL
    ops.b = 5;
    EXPECT_EQ(evalOp(mk3(Opcode::ADDL), ops, 0).value, 5u);
}

TEST(Eval, DirectedLogicalAndShifts)
{
    Operands ops;
    ops.a = 0xff00;
    ops.b = 0x0ff0;
    EXPECT_EQ(evalOp(mk3(Opcode::AND), ops, 0).value, 0x0f00u);
    EXPECT_EQ(evalOp(mk3(Opcode::BIS), ops, 0).value, 0xfff0u);
    EXPECT_EQ(evalOp(mk3(Opcode::XOR), ops, 0).value, 0xf0f0u);
    EXPECT_EQ(evalOp(mk3(Opcode::BIC), ops, 0).value, 0xf000u);
    ops.a = static_cast<Word>(-8);
    ops.b = 1;
    EXPECT_EQ(static_cast<SWord>(evalOp(mk3(Opcode::SRA), ops, 0).value),
              -4);
    EXPECT_EQ(evalOp(mk3(Opcode::SRL), ops, 0).value,
              0x7ffffffffffffffcull);
    EXPECT_EQ(evalOp(mk3(Opcode::SLL), ops, 0).value,
              static_cast<Word>(-16));
}

TEST(Eval, DirectedCompares)
{
    Operands ops;
    ops.a = static_cast<Word>(-3);
    ops.b = 2;
    EXPECT_EQ(evalOp(mk3(Opcode::CMPLT), ops, 0).value, 1u);
    EXPECT_EQ(evalOp(mk3(Opcode::CMPEQ), ops, 0).value, 0u);
    // Unsigned: -3 is huge.
    EXPECT_EQ(evalOp(mk3(Opcode::CMPULT), ops, 0).value, 0u);
    EXPECT_EQ(evalOp(mk3(Opcode::CMPULE), ops, 0).value, 0u);
}

TEST(Eval, DirectedCmov)
{
    Operands ops;
    ops.a = 0;
    ops.b = 111;
    ops.c = 222;
    EXPECT_EQ(evalOp(mk3(Opcode::CMOVEQ), ops, 0).value, 111u);
    EXPECT_EQ(evalOp(mk3(Opcode::CMOVNE), ops, 0).value, 222u);
    ops.a = 1;
    EXPECT_EQ(evalOp(mk3(Opcode::CMOVLBS), ops, 0).value, 111u);
}

TEST(Eval, DirectedByteOps)
{
    Operands ops;
    ops.a = 0x1122334455667788ull;
    ops.b = 2;
    EXPECT_EQ(evalOp(mk3(Opcode::EXTBL), ops, 0).value, 0x66u);
    EXPECT_EQ(evalOp(mk3(Opcode::EXTWL), ops, 0).value, 0x5566u);
    EXPECT_EQ(evalOp(mk3(Opcode::EXTLL), ops, 0).value, 0x33445566u);
    ops.a = 0xab;
    EXPECT_EQ(evalOp(mk3(Opcode::INSBL), ops, 0).value, 0xab0000u);
    ops.a = 0x1122334455667788ull;
    ops.b = 0x0f; // keep low 4 bytes
    EXPECT_EQ(evalOp(mk3(Opcode::ZAPNOT), ops, 0).value, 0x55667788u);
}

TEST(Eval, DirectedCounts)
{
    Operands ops;
    ops.a = 0x00f0;
    EXPECT_EQ(evalOp(mk3(Opcode::CTLZ), ops, 0).value, 56u);
    EXPECT_EQ(evalOp(mk3(Opcode::CTTZ), ops, 0).value, 4u);
    EXPECT_EQ(evalOp(mk3(Opcode::CTPOP), ops, 0).value, 4u);
    ops.a = 0;
    EXPECT_EQ(evalOp(mk3(Opcode::CTLZ), ops, 0).value, 64u);
    EXPECT_EQ(evalOp(mk3(Opcode::CTTZ), ops, 0).value, 64u);
}

TEST(Eval, BranchOutcomes)
{
    Operands ops;
    ops.a = 0;
    EXPECT_TRUE(evalOp(mk3(Opcode::BEQ), ops, 0).taken);
    EXPECT_FALSE(evalOp(mk3(Opcode::BNE), ops, 0).taken);
    EXPECT_TRUE(evalOp(mk3(Opcode::BGE), ops, 0).taken);
    EXPECT_TRUE(evalOp(mk3(Opcode::BLE), ops, 0).taken);
    EXPECT_FALSE(evalOp(mk3(Opcode::BLT), ops, 0).taken);
    EXPECT_FALSE(evalOp(mk3(Opcode::BGT), ops, 0).taken);
    ops.a = static_cast<Word>(-5);
    EXPECT_TRUE(evalOp(mk3(Opcode::BLT), ops, 0).taken);
    EXPECT_TRUE(evalOp(mk3(Opcode::BLBS), ops, 0).taken);
}

TEST(Eval, ReturnAddressOps)
{
    Operands ops;
    const EvalResult r = evalOp(mk3(Opcode::BSR), ops, 0x10040);
    EXPECT_TRUE(r.taken);
    EXPECT_EQ(r.value, 0x10040u);
}

TEST(Eval, MemoryOpsEvaluateToEffectiveAddress)
{
    Inst i;
    i.op = Opcode::LDQ;
    i.ra = 1;
    i.rb = 2;
    i.disp = -8;
    Operands ops;
    ops.b = 0x20010;
    EXPECT_EQ(evalOp(i, ops, 0).value, 0x20008u);
}

/**
 * The central equivalence property: for every opcode with an RB datapath,
 * evalOpRb(inst, rb(ops)).value.toTc() == evalOp(inst, ops).value, and
 * branch outcomes agree, over random operands and random representations
 * (operands that went through chains of RB adds, not just fromTc).
 */
class RbEquivalence : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(RbEquivalence, RbPathMatchesTcPath)
{
    const Opcode op = GetParam();
    Rng rng(1000 + static_cast<unsigned>(op));
    for (int trial = 0; trial < 4000; ++trial) {
        Inst inst = mk3(op);
        if (op == Opcode::LDA || op == Opcode::LDAH || isLoad(op) ||
            isStore(op)) {
            inst.disp = static_cast<std::int32_t>(rng.range(-32768, 32767));
        }
        if (op == Opcode::LDIQ)
            inst.imm64 = static_cast<std::int64_t>(rng.next());

        Operands tc;
        tc.a = rng.next();
        tc.b = rng.next();
        tc.c = rng.next();
        // Shift amounts and byte indexes: keep small sometimes.
        if (op == Opcode::SLL && rng.chance(3, 4))
            tc.b = rng.below(64);

        // RB operands with history: run each through a few adds and back
        // so representations are "messy" but values match.
        RbOperands rb;
        auto messy = [&rng](Word v) {
            RbNum x = RbNum::fromTc(v);
            const Word tweak = rng.next();
            x = rbAdd(x, RbNum::fromTc(tweak)).sum;
            x = rbSub(x, RbNum::fromTc(tweak)).sum;
            return x;
        };
        rb.a = messy(tc.a);
        rb.b = messy(tc.b);
        rb.c = messy(tc.c);
        ASSERT_EQ(rb.a.toTc(), tc.a);

        const EvalResult ref = evalOp(inst, tc, 0);
        const RbEvalResult got = evalOpRb(inst, rb);
        ASSERT_TRUE(got.usedRbPath) << opcodeName(op);
        EXPECT_EQ(got.taken, ref.taken) << opcodeName(op);
        if (writesDest(inst) || isLoad(op) || isStore(op)) {
            EXPECT_EQ(got.value.toTc(), ref.value)
                << opcodeName(op) << " a=" << tc.a << " b=" << tc.b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllRbOps, RbEquivalence,
    ::testing::Values(
        Opcode::ADDQ, Opcode::SUBQ, Opcode::ADDL, Opcode::SUBL,
        Opcode::S4ADDQ, Opcode::S8ADDQ, Opcode::S4SUBQ, Opcode::S8SUBQ,
        Opcode::LDA, Opcode::LDAH, Opcode::LDIQ, Opcode::SLL,
        Opcode::CMPEQ, Opcode::CMPLT, Opcode::CMPLE, Opcode::CMPULT,
        Opcode::CMPULE, Opcode::CMOVEQ, Opcode::CMOVNE, Opcode::CMOVLT,
        Opcode::CMOVGE, Opcode::CMOVLE, Opcode::CMOVGT, Opcode::CMOVLBS,
        Opcode::CMOVLBC, Opcode::CTTZ, Opcode::MULQ, Opcode::MULL,
        Opcode::LDQ, Opcode::LDL,
        Opcode::STQ, Opcode::STL, Opcode::BEQ, Opcode::BNE, Opcode::BLT,
        Opcode::BGE, Opcode::BLE, Opcode::BGT, Opcode::BLBS,
        Opcode::BLBC),
    [](const ::testing::TestParamInfo<Opcode> &param_info) {
        return std::string(opcodeName(param_info.param));
    });

TEST(Eval, TcOnlyOpsDeclineRbPath)
{
    RbOperands rb;
    for (Opcode op : {Opcode::AND, Opcode::XOR, Opcode::SRL, Opcode::SRA,
                      Opcode::EXTBL, Opcode::CTLZ, Opcode::CTPOP,
                      Opcode::ADDT, Opcode::BR}) {
        EXPECT_FALSE(evalOpRb(mk3(op), rb).usedRbPath) << opcodeName(op);
    }
}

} // namespace
} // namespace rbsim
