/**
 * @file
 * Tests for the gate-level digit slice (paper Figure 2): bit-for-bit
 * equivalence with the bit-parallel adder, legality of all wire
 * encodings, and the locality of the h/f signal structure.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "rb/digit_slice.hh"

namespace rbsim
{
namespace
{

RbNum
randomRawRb(Rng &rng)
{
    const std::uint64_t p = rng.next();
    const std::uint64_t m = rng.next() & ~p;
    return RbNum(p, m);
}

TEST(DigitSlice, ChainedSlicesMatchBitParallelAdder)
{
    Rng rng(31);
    for (int i = 0; i < 20000; ++i) {
        const RbNum x = randomRawRb(rng);
        const RbNum y = randomRawRb(rng);
        const RbRawSum a = rbAddRaw(x, y);
        const RbRawSum b = addBySlices(x, y);
        EXPECT_TRUE(a.digits == b.digits)
            << x.toString() << " + " << y.toString();
        EXPECT_EQ(a.carryOut, b.carryOut);
    }
}

TEST(DigitSlice, OutputsAreLegalDigitEncodings)
{
    // Exhaustive over all inputs of one slice: 3 x 3 digit pairs, 2 h
    // values, 3 legal transfer encodings.
    const DigitWires digits[3] = {{false, false}, {false, true},
                                  {true, false}};
    const TransferWires transfers[3] = {{false, false}, {true, false},
                                        {false, true}};
    for (const auto &x : digits) {
        for (const auto &y : digits) {
            for (bool h : {false, true}) {
                for (const auto &f : transfers) {
                    const SliceOutputs out = evalDigitSlice(x, y, h, f);
                    // Never both wires of a pair.
                    EXPECT_FALSE(out.sum.pos && out.sum.neg);
                    EXPECT_FALSE(out.f.plus && out.f.minus);
                }
            }
        }
    }
}

TEST(DigitSlice, SliceValueIdentity)
{
    // For every slice input combination that can legally arise, check
    // x + y + f_prev == sum + 2 * f_out, i.e. the slice conserves value.
    // (f_prev legality: an incoming +1 transfer requires h_prev chosen by
    // the slice below; here we only check combinations the transfer rule
    // can produce: f_prev = +1 implies h_prev refers to THIS slice's
    // lower neighbor, so we validate conservation only where the rule's
    // no-collision precondition holds.)
    auto val = [](DigitWires d) { return (d.pos ? 1 : 0) - (d.neg ? 1 : 0); };
    auto tval = [](TransferWires t) {
        return (t.plus ? 1 : 0) - (t.minus ? 1 : 0);
    };
    const DigitWires digits[3] = {{false, false}, {false, true},
                                  {true, false}};
    const TransferWires transfers[3] = {{false, false}, {true, false},
                                        {false, true}};
    for (const auto &x : digits) {
        for (const auto &y : digits) {
            for (bool h : {false, true}) {
                for (const auto &f : transfers) {
                    // The rule guarantees: when h (both lower digits
                    // nonneg) the lower slice never sends -1 toward a
                    // -1 interim digit, etc. Skip impossible pairs:
                    // f_prev == +1 can only arrive when the lower slice
                    // had bn at ITS lower neighbor — unconstrained here —
                    // but collision-freedom only needs d chosen from h.
                    const SliceOutputs out = evalDigitSlice(x, y, h, f);
                    const int z = val(x) + val(y);
                    const int d = (z == 1 || z == -1)
                        ? (h ? -1 : 1) : 0;
                    // Skip combinations where d and f_prev collide; the
                    // adder's invariant makes them unreachable.
                    if (d == tval(f) && d != 0)
                        continue;
                    const int lhs = z + tval(f);
                    const int rhs = (out.sum.pos ? 1 : 0) -
                                    (out.sum.neg ? 1 : 0) +
                                    2 * tval(out.f);
                    EXPECT_EQ(lhs, rhs);
                }
            }
        }
    }
}

TEST(DigitSlice, HDependsOnlyOnOwnDigits)
{
    const DigitWires digits[3] = {{false, false}, {false, true},
                                  {true, false}};
    const TransferWires transfers[3] = {{false, false}, {true, false},
                                        {false, true}};
    for (const auto &x : digits) {
        for (const auto &y : digits) {
            bool first = true;
            bool h_ref = false;
            for (bool h : {false, true}) {
                for (const auto &f : transfers) {
                    const SliceOutputs out = evalDigitSlice(x, y, h, f);
                    if (first) {
                        h_ref = out.h;
                        first = false;
                    }
                    EXPECT_EQ(out.h, h_ref)
                        << "h must not depend on h_prev or f_prev";
                }
            }
        }
    }
}

TEST(DigitSlice, FIndependentOfFPrev)
{
    const DigitWires digits[3] = {{false, false}, {false, true},
                                  {true, false}};
    const TransferWires transfers[3] = {{false, false}, {true, false},
                                        {false, true}};
    for (const auto &x : digits) {
        for (const auto &y : digits) {
            for (bool h : {false, true}) {
                const SliceOutputs ref =
                    evalDigitSlice(x, y, h, transfers[0]);
                for (const auto &f : transfers) {
                    const SliceOutputs out = evalDigitSlice(x, y, h, f);
                    EXPECT_EQ(out.f.plus, ref.f.plus);
                    EXPECT_EQ(out.f.minus, ref.f.minus);
                }
            }
        }
    }
}

} // namespace
} // namespace rbsim
