/**
 * @file
 * Batch-vs-scalar equivalence for the SIMD redundant binary kernels
 * (rb/simd/kernels.hh). Every kernel in the *dispatched* table and in
 * the portable table must agree bit-for-bit with the scalar reference
 * functions (rbAdd, rbScaledAdd, RbNum::fromTc/toTc, normalizeMsd,
 * extractLongword, the multiplier's pairwise reduction) across every
 * batch length from 0 through one past the widest vector width, and
 * every output must keep the disjoint plane invariant
 * (plus & minus == 0). Adder inputs are MSD-normalized (the datapath's
 * domain); the conversion/normalization kernels get arbitrary planes.
 *
 * Run with RBSIM_FORCE_SCALAR=1 the same binary pins the portable
 * backend, which is how the CI matrix lane proves the SIMD paths are
 * observationally invisible (see .github/workflows).
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "rb/overflow.hh"
#include "rb/rbalu.hh"
#include "rb/simd/kernels.hh"
#include "rb/simd/rb_batch.hh"

namespace rbsim
{
namespace
{

// One past every vector width (scalar tail + full vectors + odd lane).
constexpr std::size_t maxLanes = 65;

struct Planes
{
    std::array<std::uint64_t, maxLanes> p{};
    std::array<std::uint64_t, maxLanes> m{};
};

/** Arbitrary legal (disjoint-plane) digits — the whole encoding space.
 * Only the kernels defined on it (toTc, normalizeMsd, extractLongword)
 * may consume these. */
void
fillArbitrary(Rng &rng, Planes &x, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        x.p[i] = rng.next();
        x.m[i] = rng.next() & ~x.p[i];
    }
}

/** Normalized (MSD re-signed) digits — the adder's domain. Every value
 * the datapath holds is a fromTc conversion or a normalized adder
 * output, both with unwrapped value in [-2^63, 2^63); rbAdd's overflow
 * rules (and the assert in normalizeQuad) assume exactly that. */
void
fillNormalized(Rng &rng, Planes &x, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t p = rng.next();
        const RbNum v = normalizeMsd(RbNum(p, rng.next() & ~p));
        x.p[i] = v.plus();
        x.m[i] = v.minus();
    }
}

void
expectDisjoint(const Planes &x, std::size_t n, const char *what)
{
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(x.p[i] & x.m[i], 0u) << what << " lane " << i;
}

/** Both tables under test: whatever dispatch picked, plus the portable
 * reference table (identical when RBSIM_FORCE_SCALAR pins scalar). */
std::vector<const simd::KernelOps *>
tables()
{
    return {&simd::kernels(), &simd::scalarKernels()};
}

TEST(RbSimd, DispatchIsConsistent)
{
    const char *forced = std::getenv("RBSIM_FORCE_SCALAR");
    if (forced && std::string(forced) != "0") {
        EXPECT_EQ(simd::activeBackend(), simd::Backend::Scalar);
    }
    switch (simd::activeBackend()) {
      case simd::Backend::Scalar:
        EXPECT_STREQ(simd::backendName(), "scalar");
        break;
      case simd::Backend::Avx2:
        EXPECT_STREQ(simd::backendName(), "avx2");
        break;
      case simd::Backend::Neon:
        EXPECT_STREQ(simd::backendName(), "neon");
        break;
    }
    // The portable table is always available and distinct storage-wise
    // only when a SIMD backend won dispatch.
    (void)simd::scalarKernels();
}

TEST(RbSimd, AddBatchMatchesRbAdd)
{
    Rng rng(101);
    for (const simd::KernelOps *k : tables()) {
        for (std::size_t n = 0; n < maxLanes + 1; ++n) {
            const std::size_t lanes = n <= maxLanes ? n : maxLanes;
            Planes a, b, s;
            std::array<std::uint8_t, maxLanes> bogus{}, ovf{};
            fillNormalized(rng, a, lanes);
            fillNormalized(rng, b, lanes);
            k->addBatch(a.p.data(), a.m.data(), b.p.data(), b.m.data(),
                        s.p.data(), s.m.data(), bogus.data(), ovf.data(),
                        lanes);
            expectDisjoint(s, lanes, "add");
            for (std::size_t i = 0; i < lanes; ++i) {
                const RbAddResult r = rbAdd(RbNum(a.p[i], a.m[i]),
                                            RbNum(b.p[i], b.m[i]));
                ASSERT_EQ(s.p[i], r.sum.plus()) << "lane " << i;
                ASSERT_EQ(s.m[i], r.sum.minus()) << "lane " << i;
                ASSERT_EQ(bogus[i] != 0, r.bogusCorrected) << "lane " << i;
                ASSERT_EQ(ovf[i] != 0, r.tcOverflow) << "lane " << i;
            }
        }
    }
}

TEST(RbSimd, SubViaPlaneSwapMatchesRbSub)
{
    Rng rng(102);
    for (const simd::KernelOps *k : tables()) {
        for (std::size_t n : {1u, 3u, 4u, 7u, 64u}) {
            Planes a, b, s;
            std::array<std::uint8_t, maxLanes> bogus{}, ovf{};
            fillNormalized(rng, a, n);
            fillNormalized(rng, b, n);
            simd::rbSubBatch(*k, a.p.data(), a.m.data(), b.p.data(),
                             b.m.data(), s.p.data(), s.m.data(),
                             bogus.data(), ovf.data(), n);
            expectDisjoint(s, n, "sub");
            for (std::size_t i = 0; i < n; ++i) {
                const RbAddResult r = rbSub(RbNum(a.p[i], a.m[i]),
                                            RbNum(b.p[i], b.m[i]));
                ASSERT_EQ(s.p[i], r.sum.plus()) << "lane " << i;
                ASSERT_EQ(s.m[i], r.sum.minus()) << "lane " << i;
                ASSERT_EQ(bogus[i] != 0, r.bogusCorrected) << "lane " << i;
                ASSERT_EQ(ovf[i] != 0, r.tcOverflow) << "lane " << i;
            }
        }
    }
}

TEST(RbSimd, ScaledAddBatchMatchesRbScaledAdd)
{
    Rng rng(103);
    for (const simd::KernelOps *k : tables()) {
        for (std::size_t n = 0; n < maxLanes + 1; ++n) {
            const std::size_t lanes = n <= maxLanes ? n : maxLanes;
            Planes a, b, s;
            std::array<std::uint8_t, maxLanes> shift{}, bogus{}, ovf{};
            fillNormalized(rng, a, lanes);
            fillNormalized(rng, b, lanes);
            for (std::size_t i = 0; i < lanes; ++i) {
                // Mix shift-0 (the plain-add degenerate case, which must
                // NOT re-sign the MSD) with the full shift range.
                shift[i] = rng.chance(1, 3)
                    ? 0
                    : static_cast<std::uint8_t>(rng.below(64));
            }
            k->scaledAddBatch(a.p.data(), a.m.data(), shift.data(),
                              b.p.data(), b.m.data(), s.p.data(),
                              s.m.data(), bogus.data(), ovf.data(),
                              lanes);
            expectDisjoint(s, lanes, "scaledadd");
            for (std::size_t i = 0; i < lanes; ++i) {
                const RbAddResult r =
                    rbScaledAdd(RbNum(a.p[i], a.m[i]), shift[i],
                                RbNum(b.p[i], b.m[i]));
                ASSERT_EQ(s.p[i], r.sum.plus())
                    << "lane " << i << " shift " << int(shift[i]);
                ASSERT_EQ(s.m[i], r.sum.minus())
                    << "lane " << i << " shift " << int(shift[i]);
                ASSERT_EQ(bogus[i] != 0, r.bogusCorrected) << "lane " << i;
                ASSERT_EQ(ovf[i] != 0, r.tcOverflow) << "lane " << i;
            }
        }
    }
}

TEST(RbSimd, ConversionBatchesRoundTrip)
{
    Rng rng(104);
    for (const simd::KernelOps *k : tables()) {
        for (std::size_t n = 0; n < maxLanes + 1; ++n) {
            const std::size_t lanes = n <= maxLanes ? n : maxLanes;
            std::array<std::uint64_t, maxLanes> w{}, back{};
            Planes x;
            for (std::size_t i = 0; i < lanes; ++i)
                w[i] = rng.next();
            k->fromTcBatch(w.data(), x.p.data(), x.m.data(), lanes);
            expectDisjoint(x, lanes, "fromTc");
            for (std::size_t i = 0; i < lanes; ++i) {
                const RbNum ref = RbNum::fromTc(w[i]);
                ASSERT_EQ(x.p[i], ref.plus()) << "lane " << i;
                ASSERT_EQ(x.m[i], ref.minus()) << "lane " << i;
            }

            // toTc over arbitrary planes, not just fromTc outputs.
            fillArbitrary(rng, x, lanes);
            k->toTcBatch(x.p.data(), x.m.data(), back.data(), lanes);
            for (std::size_t i = 0; i < lanes; ++i)
                ASSERT_EQ(back[i], RbNum(x.p[i], x.m[i]).toTc())
                    << "lane " << i;
        }
    }
}

TEST(RbSimd, NormalizeMsdBatchMatchesScalar)
{
    Rng rng(105);
    for (const simd::KernelOps *k : tables()) {
        for (std::size_t n = 0; n < maxLanes + 1; ++n) {
            const std::size_t lanes = n <= maxLanes ? n : maxLanes;
            Planes x;
            fillArbitrary(rng, x, lanes);
            Planes in = x;
            k->normalizeMsdBatch(x.p.data(), x.m.data(), lanes);
            expectDisjoint(x, lanes, "normalizeMsd");
            for (std::size_t i = 0; i < lanes; ++i) {
                const RbNum ref = normalizeMsd(RbNum(in.p[i], in.m[i]));
                ASSERT_EQ(x.p[i], ref.plus()) << "lane " << i;
                ASSERT_EQ(x.m[i], ref.minus()) << "lane " << i;
            }
        }
    }
}

TEST(RbSimd, ExtractLongwordBatchMatchesScalar)
{
    Rng rng(106);
    for (const simd::KernelOps *k : tables()) {
        for (std::size_t n = 0; n < maxLanes + 1; ++n) {
            const std::size_t lanes = n <= maxLanes ? n : maxLanes;
            Planes x;
            fillArbitrary(rng, x, lanes);
            Planes in = x;
            k->extractLongwordBatch(x.p.data(), x.m.data(), lanes);
            expectDisjoint(x, lanes, "extractLongword");
            for (std::size_t i = 0; i < lanes; ++i) {
                const RbNum ref = extractLongword(RbNum(in.p[i], in.m[i]));
                ASSERT_EQ(x.p[i], ref.plus()) << "lane " << i;
                ASSERT_EQ(x.m[i], ref.minus()) << "lane " << i;
            }
        }
    }
}

TEST(RbSimd, MulReduceMatchesPairwiseTree)
{
    Rng rng(107);
    for (const simd::KernelOps *k : tables()) {
        for (std::size_t n = 0; n < maxLanes + 1; ++n) {
            const std::size_t lanes = n <= maxLanes ? n : maxLanes;
            Planes x;
            fillNormalized(rng, x, lanes);

            // Reference: the multiplier's pairwise reduction — rounds of
            // out[j] = rbAdd(lane[2j], lane[2j+1]) with an odd leftover
            // passed through.
            std::vector<RbNum> ref;
            for (std::size_t i = 0; i < lanes; ++i)
                ref.emplace_back(x.p[i], x.m[i]);
            unsigned ref_levels = 0;
            while (ref.size() > 1) {
                std::vector<RbNum> next;
                for (std::size_t j = 0; j + 1 < ref.size(); j += 2)
                    next.push_back(rbAdd(ref[j], ref[j + 1]).sum);
                if (ref.size() & 1)
                    next.push_back(ref.back());
                ref = std::move(next);
                ++ref_levels;
            }

            const unsigned levels =
                k->mulReduce(x.p.data(), x.m.data(), lanes);
            ASSERT_EQ(levels, ref_levels) << "n " << lanes;
            if (lanes > 0) {
                ASSERT_EQ(x.p[0] & x.m[0], 0u);
                ASSERT_EQ(x.p[0], ref.front().plus()) << "n " << lanes;
                ASSERT_EQ(x.m[0], ref.front().minus()) << "n " << lanes;
            }
        }
    }
}

TEST(RbSimd, DispatchedMatchesForcedScalarBitForBit)
{
    // The property the CI matrix lane checks end-to-end at the simulator
    // level, here at kernel granularity: whatever backend dispatch
    // picked produces the exact bytes the portable backend produces.
    Rng rng(108);
    const simd::KernelOps &dispatched = simd::kernels();
    const simd::KernelOps &portable = simd::scalarKernels();
    for (std::size_t n = 0; n < maxLanes + 1; ++n) {
        const std::size_t lanes = n <= maxLanes ? n : maxLanes;
        Planes a, b, s1, s2;
        std::array<std::uint8_t, maxLanes> shift{};
        std::array<std::uint8_t, maxLanes> bog1{}, ovf1{}, bog2{}, ovf2{};
        fillArbitrary(rng, a, lanes);
        fillArbitrary(rng, b, lanes);
        for (std::size_t i = 0; i < lanes; ++i)
            shift[i] = static_cast<std::uint8_t>(rng.below(64));
        dispatched.scaledAddBatch(a.p.data(), a.m.data(), shift.data(),
                                  b.p.data(), b.m.data(), s1.p.data(),
                                  s1.m.data(), bog1.data(), ovf1.data(),
                                  lanes);
        portable.scaledAddBatch(a.p.data(), a.m.data(), shift.data(),
                                b.p.data(), b.m.data(), s2.p.data(),
                                s2.m.data(), bog2.data(), ovf2.data(),
                                lanes);
        for (std::size_t i = 0; i < lanes; ++i) {
            ASSERT_EQ(s1.p[i], s2.p[i]) << "lane " << i;
            ASSERT_EQ(s1.m[i], s2.m[i]) << "lane " << i;
            ASSERT_EQ(bog1[i], bog2[i]) << "lane " << i;
            ASSERT_EQ(ovf1[i], ovf2[i]) << "lane " << i;
        }
    }
}

TEST(RbSimd, RbBatchLanesEvaluateLikeTheScalarOps)
{
    // The container the core's execute stage uses, driven the way
    // OooCore drives it: mixed add/sub/scaled-add lanes, one run() call.
    Rng rng(109);
    simd::RbBatch batch(64);
    for (int trial = 0; trial < 200; ++trial) {
        batch.clear();
        const std::size_t n = static_cast<std::size_t>(rng.below(65));
        std::vector<RbAddResult> ref;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t ap = rng.next();
            const RbNum a = normalizeMsd(RbNum(ap, rng.next() & ~ap));
            const std::uint64_t bp = rng.next();
            const RbNum b = normalizeMsd(RbNum(bp, rng.next() & ~bp));
            switch (rng.below(3)) {
              case 0:
                ASSERT_EQ(batch.pushAdd(a, b), i);
                ref.push_back(rbAdd(a, b));
                break;
              case 1:
                ASSERT_EQ(batch.pushSub(a, b), i);
                ref.push_back(rbSub(a, b));
                break;
              default: {
                const unsigned k = rng.chance(1, 2) ? 2 : 3;
                ASSERT_EQ(batch.pushScaledAdd(a, k, b), i);
                ref.push_back(rbScaledAdd(a, k, b));
                break;
              }
            }
        }
        ASSERT_EQ(batch.size(), n);
        batch.run(simd::kernels());
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(batch.sum(i).plus(), ref[i].sum.plus());
            ASSERT_EQ(batch.sum(i).minus(), ref[i].sum.minus());
            ASSERT_EQ(batch.bogusCorrected(i), ref[i].bogusCorrected);
            ASSERT_EQ(batch.tcOverflow(i), ref[i].tcOverflow);
        }
    }
}

} // namespace
} // namespace rbsim
