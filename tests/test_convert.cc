/**
 * @file
 * Tests for TC <-> RB conversion (paper §3.2) and the gate-delay model
 * (paper §3.4).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "rb/convert.hh"
#include "rb/gatedelay.hh"
#include "rb/rbalu.hh"

namespace rbsim
{
namespace
{

TEST(Convert, RippleSubtractorMatchesFastPath)
{
    Rng rng(41);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t p = rng.next();
        const std::uint64_t m = rng.next() & ~p;
        const RbNum x(p, m);
        EXPECT_EQ(rbToTcRipple(x), rbToTc(x));
    }
}

TEST(Convert, RoundTripThroughArithmetic)
{
    Rng rng(42);
    for (int i = 0; i < 10000; ++i) {
        const Word a = rng.next();
        const Word b = rng.next();
        // TC -> RB (free) -> add -> RB -> TC (the expensive conversion).
        const RbNum sum = rbAdd(tcToRb(a), tcToRb(b)).sum;
        EXPECT_EQ(rbToTc(sum), a + b);
        EXPECT_EQ(rbToTcRipple(sum), a + b);
    }
}

TEST(GateDelay, RbAdderDepthIsWidthIndependent)
{
    const unsigned d8 = rbAdderDepth(8);
    for (unsigned w : {16u, 32u, 64u, 128u})
        EXPECT_EQ(rbAdderDepth(w), d8);
}

TEST(GateDelay, ClaGrowsLogarithmically)
{
    EXPECT_LT(claAdderDepth(16), claAdderDepth(64));
    EXPECT_EQ(claAdderDepth(64), claAdderDepth(256) - 4);
    // Doubling width adds at most one radix-4 level.
    EXPECT_LE(claAdderDepth(128) - claAdderDepth(64), 4u);
}

TEST(GateDelay, RippleGrowsLinearly)
{
    EXPECT_EQ(rippleAdderDepth(64) - rippleAdderDepth(32), 64u);
}

TEST(GateDelay, PaperRatiosShape)
{
    // Paper section 3.4: the RB adder is about 3x faster than a 64-bit
    // CLA and 2.7x faster than the converter. Our unit-gate model must
    // land in the right neighborhood: at least 2x, no more than 4x.
    const double ratio_cla = static_cast<double>(claAdderDepth(64)) /
                             rbAdderDepth(64);
    EXPECT_GE(ratio_cla, 2.0);
    EXPECT_LE(ratio_cla, 4.0);

    const double ratio_conv = static_cast<double>(converterDepth(64)) /
                              rbAdderDepth(64);
    EXPECT_GE(ratio_conv, 2.0);
    EXPECT_LE(ratio_conv, 4.0);

    // A staggered 2-stage adder's per-stage delay is NOT half a full add:
    // pipelining helps the clock but not the latency (paper section 2).
    EXPECT_GT(2 * staggeredStageDepth(64), claAdderDepth(64));
}

} // namespace
} // namespace rbsim
