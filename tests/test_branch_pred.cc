/**
 * @file
 * Unit tests for the branch prediction substrate: hybrid gshare/PAs
 * training, chooser arbitration, history repair, BTB, and RAS.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "frontend/branch_pred.hh"

namespace rbsim
{
namespace
{

/** Drive the predictor the way the core does for a correct prediction. */
bool
predictAndTrain(HybridPredictor &p, std::uint64_t pc, bool actual)
{
    BpIndices idx;
    const bool pred = p.predict(pc, &idx);
    p.speculate(pc, pred);
    if (pred != actual) {
        // Mispredict: the core restores pre-branch history and re-applies
        // the actual outcome; emulate with a local reconstruction.
        // (History was already shifted with the wrong bit; correct it.)
        const std::uint32_t h = p.globalHistory();
        p.restoreHistory((h >> 1));
        p.speculate(pc, actual);
    }
    p.update(idx, actual);
    return pred;
}

TEST(BranchPred, LearnsAlwaysTaken)
{
    HybridPredictor p;
    int wrong = 0;
    for (int i = 0; i < 100; ++i)
        wrong += predictAndTrain(p, 42, true) != true;
    // Cold start plus history warmup; must lock in quickly.
    EXPECT_LT(wrong, 25);
    // Steady state is perfect.
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(predictAndTrain(p, 42, true));
}

TEST(BranchPred, LearnsAlternatingPatternViaHistory)
{
    HybridPredictor p;
    int wrong_late = 0;
    for (int i = 0; i < 400; ++i) {
        const bool actual = (i & 1) != 0;
        const bool pred = predictAndTrain(p, 7, actual);
        if (i >= 200 && pred != actual)
            ++wrong_late;
    }
    // A history-based predictor nails a period-2 pattern.
    EXPECT_LT(wrong_late, 5);
}

TEST(BranchPred, LearnsShortLoopExitPattern)
{
    // taken x7 then not-taken, repeatedly: local/global history covers
    // period 8 easily.
    HybridPredictor p;
    int wrong_late = 0;
    for (int i = 0; i < 1600; ++i) {
        const bool actual = (i % 8) != 7;
        const bool pred = predictAndTrain(p, 99, actual);
        if (i >= 800 && pred != actual)
            ++wrong_late;
    }
    EXPECT_LT(wrong_late, 10);
}

TEST(BranchPred, HistoryRestoreRoundTrips)
{
    HybridPredictor p;
    for (int i = 0; i < 10; ++i)
        p.speculate(5, i % 2 == 0);
    const std::uint32_t h = p.globalHistory();
    p.speculate(5, true);
    p.speculate(5, false);
    EXPECT_NE(p.globalHistory(), h);
    p.restoreHistory(h);
    EXPECT_EQ(p.globalHistory(), h);
}

TEST(BranchPred, TwoBranchesDoNotDestructivelyAlias)
{
    // One always-taken and one always-not-taken branch at different PCs
    // must both converge.
    HybridPredictor p;
    int wrong_late = 0;
    for (int i = 0; i < 600; ++i) {
        const bool pred1 = predictAndTrain(p, 1000, true);
        const bool pred2 = predictAndTrain(p, 2000, false);
        if (i >= 300) {
            wrong_late += pred1 != true;
            wrong_late += pred2 != false;
        }
    }
    EXPECT_LT(wrong_late, 8);
}

TEST(BranchPred, CounterUpdateSaturates)
{
    std::uint8_t c = 0;
    c = counterUpdate(c, false);
    EXPECT_EQ(c, 0);
    c = counterUpdate(c, true);
    c = counterUpdate(c, true);
    c = counterUpdate(c, true);
    c = counterUpdate(c, true);
    EXPECT_EQ(c, 3);
}

TEST(Btb, MissThenHitAfterUpdate)
{
    Btb btb(4096);
    std::uint64_t target = 0;
    EXPECT_FALSE(btb.lookup(123, target));
    btb.update(123, 777);
    ASSERT_TRUE(btb.lookup(123, target));
    EXPECT_EQ(target, 777u);
}

TEST(Btb, IndexConflictEvicts)
{
    Btb btb(16); // tiny: pc and pc+16 conflict
    btb.update(3, 100);
    btb.update(3 + 16, 200);
    std::uint64_t target = 0;
    // Different tag in the same slot: original entry replaced.
    EXPECT_FALSE(btb.lookup(3, target));
    ASSERT_TRUE(btb.lookup(3 + 16, target));
    EXPECT_EQ(target, 200u);
}

TEST(Btb, RetargetsOnUpdate)
{
    Btb btb(4096);
    btb.update(50, 111);
    btb.update(50, 222);
    std::uint64_t target = 0;
    ASSERT_TRUE(btb.lookup(50, target));
    EXPECT_EQ(target, 222u);
}

TEST(Ras, LifoOrder)
{
    Ras ras;
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, SaveRestoreRepairsSpeculativePops)
{
    Ras ras;
    ras.push(0x100);
    ras.push(0x200);
    BpSnapshot snap;
    ras.save(snap);
    // Wrong-path activity: pops and pushes.
    ras.pop();
    ras.pop();
    ras.push(0xbad);
    ras.restore(snap);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, WrapsAtCapacity)
{
    Ras ras;
    for (Addr a = 1; a <= 20; ++a)
        ras.push(a * 0x10);
    // Capacity 16: the newest 16 survive.
    for (Addr a = 20; a > 4; --a)
        EXPECT_EQ(ras.pop(), a * 0x10);
}

} // namespace
} // namespace rbsim
