/**
 * @file
 * Tests for the redundant binary tree multiplier (paper section 2's
 * historic application of RB arithmetic): value correctness against
 * 64-bit two's complement multiplication, both the digit-direct and the
 * Booth-recoded variants, and the constant-per-level delay model.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "rb/gatedelay.hh"
#include "rb/multiplier.hh"

namespace rbsim
{
namespace
{

RbNum
messy(Rng &rng, Word v)
{
    RbNum x = RbNum::fromTc(v);
    const Word t = rng.next();
    x = rbAdd(x, RbNum::fromTc(t)).sum;
    return rbSub(x, RbNum::fromTc(t)).sum;
}

TEST(RbMultiplier, DigitTreeMatchesTcMultiply)
{
    Rng rng(81);
    for (int i = 0; i < 4000; ++i) {
        const Word a = rng.next();
        const Word b = rng.next();
        const RbMulResult r =
            rbTreeMultiply(messy(rng, a), messy(rng, b));
        EXPECT_EQ(r.product.toTc(), a * b) << a << " * " << b;
    }
}

TEST(RbMultiplier, BoothTreeMatchesTcMultiply)
{
    Rng rng(82);
    for (int i = 0; i < 4000; ++i) {
        const Word a = rng.next();
        const Word b = rng.next();
        const RbMulResult r =
            rbTreeMultiplyBooth(messy(rng, a), messy(rng, b));
        EXPECT_EQ(r.product.toTc(), a * b) << a << " * " << b;
    }
}

TEST(RbMultiplier, SmallAndEdgeValues)
{
    const Word cases[] = {0, 1, 2, 3, 7, 0xff, 0x8000000000000000ull,
                          0x7fffffffffffffffull, ~Word{0}};
    for (Word a : cases) {
        for (Word b : cases) {
            EXPECT_EQ(rbTreeMultiply(RbNum::fromTc(a),
                                     RbNum::fromTc(b)).product.toTc(),
                      a * b);
            EXPECT_EQ(rbTreeMultiplyBooth(RbNum::fromTc(a),
                                          RbNum::fromTc(b))
                          .product.toTc(),
                      a * b);
        }
    }
}

TEST(RbMultiplier, ZeroMultiplierShortCircuits)
{
    const RbMulResult r =
        rbTreeMultiply(RbNum::fromTc(12345), RbNum());
    EXPECT_TRUE(r.product.isZero());
    EXPECT_EQ(r.treeLevels, 0u);
}

TEST(RbMultiplier, TreeDepthIsLogarithmic)
{
    Rng rng(83);
    const RbMulResult full = rbTreeMultiply(
        RbNum::fromTc(rng.next() | 1), RbNum::fromTc(~Word{0}));
    // ~64 partial products -> ceil(log2) = 6 reduction levels.
    EXPECT_LE(full.treeLevels, 7u);
    EXPECT_GE(full.treeLevels, 6u);

    const RbMulResult booth = rbTreeMultiplyBooth(
        RbNum::fromTc(rng.next() | 1),
        RbNum::fromTc(0x5555555555555555ull));
    EXPECT_LE(booth.treeLevels, 6u);
}

TEST(RbMultiplier, BoothHalvesModeledDepth)
{
    EXPECT_LT(rbMulTreeDepth(64, true), rbMulTreeDepth(64, false));
    // Each level costs one constant adder delay, independent of width.
    EXPECT_EQ(rbMulTreeDepth(64, false) - rbMulTreeDepth(32, false),
              rbAdderDepth(64));
}

TEST(RbMultiplier, NegativeDigitOperandsExerciseFreeNegation)
{
    // A multiplier value whose representation is rich in -1 digits
    // (subtraction results) must still multiply exactly.
    Rng rng(84);
    for (int i = 0; i < 2000; ++i) {
        const Word a = rng.next();
        const Word big = rng.next() | 0x8000000000000000ull;
        const Word small = rng.next() & 0xffff;
        const RbNum b = rbSub(RbNum::fromTc(small),
                              RbNum::fromTc(big)).sum;
        EXPECT_EQ(rbTreeMultiply(RbNum::fromTc(a), b).product.toTc(),
                  a * (small - big));
    }
}

} // namespace
} // namespace rbsim
