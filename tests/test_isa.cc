/**
 * @file
 * Tests for ISA static properties: operand extraction, latency classes,
 * format classification (paper Table 1), and opcode naming.
 */

#include <gtest/gtest.h>

#include "isa/disasm.hh"
#include "isa/opclass.hh"

namespace rbsim
{
namespace
{

Inst
mk3(Opcode op, unsigned ra, unsigned rb, unsigned rc)
{
    Inst i;
    i.op = op;
    i.ra = static_cast<std::uint8_t>(ra);
    i.rb = static_cast<std::uint8_t>(rb);
    i.rc = static_cast<std::uint8_t>(rc);
    return i;
}

TEST(IsaInst, OperateFormatOperands)
{
    const Inst i = mk3(Opcode::ADDQ, 1, 2, 3);
    EXPECT_EQ(destReg(i), 3u);
    const SrcRegs s = srcRegs(i);
    ASSERT_EQ(s.count, 2u);
    EXPECT_EQ(s.reg[0], 1u);
    EXPECT_EQ(s.reg[1], 2u);
}

TEST(IsaInst, LiteralSuppressesRbSource)
{
    Inst i = mk3(Opcode::ADDQ, 1, 0, 3);
    i.useLit = true;
    i.lit = 7;
    const SrcRegs s = srcRegs(i);
    ASSERT_EQ(s.count, 1u);
    EXPECT_EQ(s.reg[0], 1u);
}

TEST(IsaInst, ZeroRegisterSourcesAreOmitted)
{
    const Inst i = mk3(Opcode::ADDQ, zeroReg, 2, 3);
    const SrcRegs s = srcRegs(i);
    ASSERT_EQ(s.count, 1u);
    EXPECT_EQ(s.reg[0], 2u);
}

TEST(IsaInst, ZeroRegisterDestMeansNoDest)
{
    const Inst i = mk3(Opcode::ADDQ, 1, 2, zeroReg);
    EXPECT_FALSE(writesDest(i));
}

TEST(IsaInst, CondMoveReadsOldDest)
{
    const Inst i = mk3(Opcode::CMOVEQ, 1, 2, 3);
    const SrcRegs s = srcRegs(i);
    ASSERT_EQ(s.count, 3u);
    EXPECT_EQ(s.reg[2], 3u);
    EXPECT_EQ(destReg(i), 3u);
}

TEST(IsaInst, StoreReadsDataThenBase)
{
    Inst i;
    i.op = Opcode::STQ;
    i.ra = 4; // data
    i.rb = 5; // base
    i.disp = 16;
    EXPECT_FALSE(writesDest(i));
    const SrcRegs s = srcRegs(i);
    ASSERT_EQ(s.count, 2u);
    EXPECT_EQ(s.reg[0], 4u);
    EXPECT_EQ(s.reg[1], 5u);
    // Store data must be TC; the base (consumed by SAM) accepts RB.
    EXPECT_EQ(srcFormatReq(i, 0), Format::TC);
    EXPECT_EQ(srcFormatReq(i, 1), Format::RB);
}

TEST(IsaInst, LoadWritesRaReadsBase)
{
    Inst i;
    i.op = Opcode::LDQ;
    i.ra = 4;
    i.rb = 5;
    EXPECT_EQ(destReg(i), 4u);
    const SrcRegs s = srcRegs(i);
    ASSERT_EQ(s.count, 1u);
    EXPECT_EQ(s.reg[0], 5u);
}

TEST(IsaInst, BranchReadsTestRegisterOnly)
{
    Inst i;
    i.op = Opcode::BNE;
    i.ra = 9;
    i.disp = -4;
    EXPECT_FALSE(writesDest(i));
    const SrcRegs s = srcRegs(i);
    ASSERT_EQ(s.count, 1u);
    EXPECT_EQ(s.reg[0], 9u);
}

TEST(IsaInst, JmpWritesReturnAddress)
{
    Inst i;
    i.op = Opcode::JMP;
    i.ra = 26;
    i.rb = 27;
    EXPECT_EQ(destReg(i), 26u);
    const SrcRegs s = srcRegs(i);
    ASSERT_EQ(s.count, 1u);
    EXPECT_EQ(s.reg[0], 27u);
}

TEST(IsaClass, Table3LatencyClassMembership)
{
    EXPECT_EQ(opClass(Opcode::ADDQ), OpClass::IntArith);
    EXPECT_EQ(opClass(Opcode::LDA), OpClass::IntArith);
    EXPECT_EQ(opClass(Opcode::S8SUBQ), OpClass::IntArith);
    EXPECT_EQ(opClass(Opcode::MULQ), OpClass::IntMul);
    EXPECT_EQ(opClass(Opcode::BIS), OpClass::IntLogical);
    EXPECT_EQ(opClass(Opcode::SLL), OpClass::ShiftLeft);
    EXPECT_EQ(opClass(Opcode::SRA), OpClass::ShiftRight);
    EXPECT_EQ(opClass(Opcode::CMPULE), OpClass::IntCompare);
    EXPECT_EQ(opClass(Opcode::CMOVGT), OpClass::CondMove);
    EXPECT_EQ(opClass(Opcode::EXTBL), OpClass::ByteManip);
    EXPECT_EQ(opClass(Opcode::CTPOP), OpClass::Count);
    EXPECT_EQ(opClass(Opcode::LDL), OpClass::Load);
    EXPECT_EQ(opClass(Opcode::STL), OpClass::Store);
    EXPECT_EQ(opClass(Opcode::BSR), OpClass::Branch);
    EXPECT_EQ(opClass(Opcode::ADDT), OpClass::FpArith);
    EXPECT_EQ(opClass(Opcode::DIVT), OpClass::FpDiv);
}

TEST(IsaClass, Table1FormatClassification)
{
    // RB in / RB out: the arithmetic family.
    for (Opcode op : {Opcode::ADDQ, Opcode::SUBQ, Opcode::MULQ,
                      Opcode::LDA, Opcode::LDAH, Opcode::S4ADDQ,
                      Opcode::SLL, Opcode::CMOVLBS, Opcode::CMOVLT,
                      Opcode::CMOVEQ}) {
        EXPECT_EQ(inputFormat(op), Format::RB) << opcodeName(op);
        EXPECT_EQ(outputFormat(op), Format::RB) << opcodeName(op);
    }
    // RB in / TC out: memory and compares.
    for (Opcode op : {Opcode::LDQ, Opcode::STQ, Opcode::CMPEQ,
                      Opcode::CMPULT}) {
        EXPECT_EQ(inputFormat(op), Format::RB) << opcodeName(op);
    }
    EXPECT_EQ(outputFormat(Opcode::LDQ), Format::TC);
    EXPECT_EQ(outputFormat(Opcode::CMPEQ), Format::TC);
    // TC in / TC out: logical, right shifts, byte, CTLZ/CTPOP.
    for (Opcode op : {Opcode::AND, Opcode::XOR, Opcode::SRL, Opcode::SRA,
                      Opcode::EXTBL, Opcode::ZAPNOT, Opcode::CTLZ,
                      Opcode::CTPOP}) {
        EXPECT_EQ(inputFormat(op), Format::TC) << opcodeName(op);
        EXPECT_EQ(outputFormat(op), Format::TC) << opcodeName(op);
    }
    // CTTZ works in RB (count trailing nonzero digits).
    EXPECT_EQ(inputFormat(Opcode::CTTZ), Format::RB);
    // Conditional branches test RB values.
    EXPECT_EQ(inputFormat(Opcode::BLT), Format::RB);
}

TEST(IsaClass, Table1RowAssignment)
{
    EXPECT_EQ(table1Row(Opcode::ADDQ), Table1Row::ArithRbRb);
    EXPECT_EQ(table1Row(Opcode::SLL), Table1Row::ArithRbRb);
    EXPECT_EQ(table1Row(Opcode::CMOVLBS), Table1Row::ArithRbRb);
    EXPECT_EQ(table1Row(Opcode::CMOVLT), Table1Row::CmovSign);
    EXPECT_EQ(table1Row(Opcode::CMOVNE), Table1Row::CmovZero);
    EXPECT_EQ(table1Row(Opcode::LDQ), Table1Row::MemAccess);
    EXPECT_EQ(table1Row(Opcode::STL), Table1Row::MemAccess);
    EXPECT_EQ(table1Row(Opcode::CMPEQ), Table1Row::CmpEq);
    EXPECT_EQ(table1Row(Opcode::CMPULE), Table1Row::CmpRel);
    EXPECT_EQ(table1Row(Opcode::BNE), Table1Row::CondBranch);
    EXPECT_EQ(table1Row(Opcode::AND), Table1Row::Other);
    EXPECT_EQ(table1Row(Opcode::EXTBL), Table1Row::Other);
    EXPECT_EQ(table1Row(Opcode::BR), Table1Row::Other);
}

TEST(IsaOpcode, NamesRoundTrip)
{
    for (unsigned i = 0; i < numOpcodes; ++i) {
        const Opcode op = static_cast<Opcode>(i);
        const auto parsed = parseOpcode(opcodeName(op));
        ASSERT_TRUE(parsed.has_value()) << opcodeName(op);
        EXPECT_EQ(*parsed, op);
    }
    EXPECT_FALSE(parseOpcode("bogus").has_value());
}

TEST(IsaDisasm, RendersCommonForms)
{
    EXPECT_EQ(disassemble(mk3(Opcode::ADDQ, 1, 2, 3)), "addq r1, r2, r3");
    Inst lit = mk3(Opcode::SUBQ, 1, 0, 3);
    lit.useLit = true;
    lit.lit = 8;
    EXPECT_EQ(disassemble(lit), "subq r1, #8, r3");
    Inst mem;
    mem.op = Opcode::LDQ;
    mem.ra = 4;
    mem.rb = 5;
    mem.disp = 16;
    EXPECT_EQ(disassemble(mem), "ldq r4, 16(r5)");
    Inst b;
    b.op = Opcode::BEQ;
    b.ra = 2;
    b.disp = -3;
    EXPECT_EQ(disassemble(b, 10), "beq r2, @8");
}

} // namespace
} // namespace rbsim
