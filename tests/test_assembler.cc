/**
 * @file
 * Tests for the text assembler, the code builder, and program images.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/builder.hh"
#include "isa/disasm.hh"

namespace rbsim
{
namespace
{

TEST(Assembler, BasicProgram)
{
    const Program p = assemble(R"(
        .name demo
        ; a comment
        start:
            ldiq r1, 10
            addq r1, r1, r2
            subq r2, #3, r2   # another comment
            halt
    )");
    EXPECT_EQ(p.name, "demo");
    ASSERT_EQ(p.code.size(), 4u);
    EXPECT_EQ(p.code[0].op, Opcode::LDIQ);
    EXPECT_EQ(p.code[0].imm64, 10);
    EXPECT_EQ(p.code[1].op, Opcode::ADDQ);
    EXPECT_TRUE(p.code[2].useLit);
    EXPECT_EQ(p.code[2].lit, 3);
    EXPECT_EQ(p.code[3].op, Opcode::HALT);
}

TEST(Assembler, BranchDisplacementsResolve)
{
    const Program p = assemble(R"(
        top:
            subq r1, #1, r1
            bne r1, top
            br end
            nop
        end:
            halt
    )");
    ASSERT_EQ(p.code.size(), 5u);
    EXPECT_EQ(p.code[1].disp, -2);  // bne at 1 -> target 0
    EXPECT_EQ(p.code[2].disp, 1);   // br at 2 -> target 4
}

TEST(Assembler, ForwardAndBackwardLabels)
{
    const Program p = assemble(R"(
        a:  br b
        b:  br a
    )");
    EXPECT_EQ(p.code[0].disp, 0);
    EXPECT_EQ(p.code[1].disp, -2);
}

TEST(Assembler, MemoryOperands)
{
    const Program p = assemble(R"(
        ldq r1, 8(r2)
        stl r3, -4(r4)
        lda r5, 100(r6)
        ldah r7, 2(r31)
    )");
    EXPECT_EQ(p.code[0].disp, 8);
    EXPECT_EQ(p.code[0].ra, 1u);
    EXPECT_EQ(p.code[0].rb, 2u);
    EXPECT_EQ(p.code[1].disp, -4);
    EXPECT_EQ(p.code[2].disp, 100);
    EXPECT_EQ(p.code[3].rb, 31u);
}

TEST(Assembler, DataDirectives)
{
    const Program p = assemble(R"(
        .org 0x30000
        .quad 1, 2, 3
        .quad -1
        halt
    )");
    ASSERT_EQ(p.data.size(), 2u);
    EXPECT_EQ(p.data[0].base, 0x30000u);
    EXPECT_EQ(p.data[0].bytes.size(), 24u);
    EXPECT_EQ(p.data[1].base, 0x30018u);
    EXPECT_EQ(p.data[1].bytes[0], 0xffu);
}

TEST(Assembler, EntryDirective)
{
    const Program p = assemble(R"(
        .entry main
            nop
        main:
            halt
    )");
    EXPECT_EQ(p.entry, 1u);
}

TEST(Assembler, PseudoOps)
{
    const Program p = assemble(R"(
        mov r1, r2
        ret r26
    )");
    EXPECT_EQ(p.code[0].op, Opcode::BIS);
    EXPECT_EQ(p.code[0].ra, 1u);
    EXPECT_EQ(p.code[0].rb, 1u);
    EXPECT_EQ(p.code[0].rc, 2u);
    EXPECT_EQ(p.code[1].op, Opcode::JMP);
    EXPECT_EQ(p.code[1].ra, 31u);
    EXPECT_EQ(p.code[1].rb, 26u);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    EXPECT_THROW(assemble("bogus r1, r2, r3"), AsmError);
    EXPECT_THROW(assemble("addq r1, r2"), AsmError);
    EXPECT_THROW(assemble("addq r1, r2, r99"), AsmError);
    EXPECT_THROW(assemble("br nowhere"), AsmError);
    EXPECT_THROW(assemble("addq r1, #999, r3"), AsmError);
    try {
        assemble("nop\nnop\nbadop r1");
        FAIL() << "expected AsmError";
    } catch (const AsmError &e) {
        EXPECT_EQ(e.line(), 3u);
    }
}

TEST(Builder, EmitsAndPatchesLabels)
{
    CodeBuilder cb("kernel");
    const Label loop = cb.newLabel();
    cb.ldiq(R(1), 5);
    cb.bind(loop);
    cb.opi(Opcode::SUBQ, R(1), 1, R(1));
    cb.branch(Opcode::BNE, R(1), loop);
    cb.halt();
    const Program p = cb.finish();
    ASSERT_EQ(p.code.size(), 4u);
    EXPECT_EQ(p.code[2].disp, -2);
    EXPECT_EQ(p.name, "kernel");
}

TEST(Builder, DataSegments)
{
    CodeBuilder cb("d");
    cb.dataWords(0x40000, {0x1122334455667788ull});
    cb.halt();
    const Program p = cb.finish();
    ASSERT_EQ(p.data.size(), 1u);
    EXPECT_EQ(p.data[0].bytes[0], 0x88u);
    EXPECT_EQ(p.data[0].bytes[7], 0x11u);
}

TEST(Builder, DisassemblerRoundTripThroughAssembler)
{
    CodeBuilder cb("rt");
    cb.op3(Opcode::ADDQ, R(1), R(2), R(3));
    cb.opi(Opcode::CMPLT, R(3), 10, R(4));
    cb.load(Opcode::LDQ, R(5), 24, R(6));
    cb.store(Opcode::STQ, R(5), 0, R(6));
    cb.halt();
    const Program p = cb.finish();
    std::string text;
    for (const Inst &inst : p.code)
        text += disassemble(inst) + "\n";
    const Program p2 = assemble(text);
    ASSERT_EQ(p2.code.size(), p.code.size());
    for (std::size_t i = 0; i < p.code.size(); ++i)
        EXPECT_TRUE(p.code[i] == p2.code[i]) << i;
}

} // namespace
} // namespace rbsim
