/**
 * @file
 * Tests for carry-free redundant binary arithmetic (paper §3.3, §3.5,
 * §3.6): value correctness against 64-bit two's complement, the bounded
 * carry propagation property, the paper's worked increment sequence, and
 * the overflow rules.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "rb/rbalu.hh"

namespace rbsim
{
namespace
{

/** Random RB number that is normalized (built from a TC value) or the
 * result of normalized adds, depending on depth. */
RbNum
randomRb(Rng &rng, int depth = 0)
{
    RbNum x = RbNum::fromTc(rng.next());
    for (int i = 0; i < depth; ++i)
        x = rbAdd(x, RbNum::fromTc(rng.next())).sum;
    return x;
}

TEST(RbAlu, AddMatchesTwosComplementRandom)
{
    Rng rng(11);
    for (int i = 0; i < 50000; ++i) {
        const Word a = rng.next();
        const Word b = rng.next();
        const RbAddResult r = rbAdd(RbNum::fromTc(a), RbNum::fromTc(b));
        EXPECT_EQ(r.sum.toTc(), a + b) << a << " + " << b;
    }
}

TEST(RbAlu, AddChainsStayCorrect)
{
    // Results of adds feed further adds without any conversion, as in the
    // forwarding of intermediate results the paper relies on.
    Rng rng(12);
    for (int trial = 0; trial < 2000; ++trial) {
        Word expect = rng.next();
        RbNum acc = RbNum::fromTc(expect);
        for (int i = 0; i < 20; ++i) {
            const Word v = rng.next();
            if (rng.chance(1, 2)) {
                expect += v;
                acc = rbAdd(acc, RbNum::fromTc(v)).sum;
            } else {
                expect -= v;
                acc = rbSub(acc, RbNum::fromTc(v)).sum;
            }
            EXPECT_EQ(acc.toTc(), expect);
            EXPECT_EQ(acc.signNegative(),
                      static_cast<SWord>(expect) < 0);
        }
    }
}

TEST(RbAlu, PaperIncrementSequence)
{
    // Paper section 3.5: repeatedly incrementing 1 yields the digit
    // patterns <0001>, <0010>, <010-1>, <1-100>, <1-11-1>, ...
    const RbNum one = RbNum::fromTc(1);
    RbNum x = one;
    EXPECT_EQ(x.toString(4), "<0,0,0,1>");
    x = rbAdd(x, one).sum;
    EXPECT_EQ(x.toString(4), "<0,0,1,0>");
    x = rbAdd(x, one).sum;
    EXPECT_EQ(x.toString(4), "<0,1,0,-1>");
    x = rbAdd(x, one).sum;
    EXPECT_EQ(x.toString(4), "<1,-1,0,0>");
    x = rbAdd(x, one).sum;
    EXPECT_EQ(x.toString(4), "<1,-1,1,-1>");
    EXPECT_EQ(x.toTc(), 5u);
}

TEST(RbAlu, CarryPropagationIsBounded)
{
    // The defining property (paper section 3.3): sum digit i depends only
    // on input digits i, i-1, i-2. Verify by perturbing digits >= i+1 and
    // checking digits <= i of the raw sum never change.
    Rng rng(13);
    for (int trial = 0; trial < 3000; ++trial) {
        const RbNum x = randomRb(rng, 1);
        const RbNum y = randomRb(rng, 1);
        const RbRawSum base = rbAddRaw(x, y);

        const unsigned i = static_cast<unsigned>(rng.below(60));
        // Perturb x above digit i by clearing all higher digits.
        const std::uint64_t keep = (std::uint64_t{1} << (i + 1)) - 1;
        const RbNum x2(x.plus() & keep, x.minus() & keep);
        const RbRawSum mod = rbAddRaw(x2, y);

        const std::uint64_t low_mask = keep;
        EXPECT_EQ(base.digits.plus() & low_mask,
                  mod.digits.plus() & low_mask);
        EXPECT_EQ(base.digits.minus() & low_mask,
                  mod.digits.minus() & low_mask);
    }
}

TEST(RbAlu, RawSumValueIdentityWithCarryOut)
{
    // carry * 2^64 + digits == x + y as wide integers.
    Rng rng(14);
    for (int i = 0; i < 20000; ++i) {
        const RbNum x = randomRb(rng, rng.below(3));
        const RbNum y = randomRb(rng, rng.below(3));
        const RbRawSum raw = rbAddRaw(x, y);
        // Compare unwrapped values via 128-bit arithmetic.
        auto unwrap = [](const RbNum &n) {
            return static_cast<__int128>(n.plus()) -
                   static_cast<__int128>(n.minus());
        };
        const __int128 lhs = unwrap(x) + unwrap(y);
        const __int128 rhs =
            (static_cast<__int128>(raw.carryOut) << 64) +
            unwrap(raw.digits);
        EXPECT_TRUE(lhs == rhs);
    }
}

TEST(RbAlu, NegationIsFreeAndExact)
{
    Rng rng(15);
    for (int i = 0; i < 20000; ++i) {
        const RbNum x = randomRb(rng, rng.below(4));
        const RbNum n = rbNegate(x);
        EXPECT_EQ(n.toTc(), static_cast<Word>(0) - x.toTc());
        EXPECT_EQ(n.plus(), x.minus());
        EXPECT_EQ(n.minus(), x.plus());
    }
}

TEST(RbAlu, SubMatchesTwosComplement)
{
    Rng rng(16);
    for (int i = 0; i < 20000; ++i) {
        const Word a = rng.next();
        const Word b = rng.next();
        EXPECT_EQ(rbSub(RbNum::fromTc(a), RbNum::fromTc(b)).sum.toTc(),
                  a - b);
    }
}

TEST(RbAlu, SignScanCorrectAfterNormalizedAdds)
{
    Rng rng(17);
    for (int i = 0; i < 20000; ++i) {
        const RbNum x = randomRb(rng, rng.below(5));
        EXPECT_EQ(x.signNegative(), static_cast<SWord>(x.toTc()) < 0)
            << x.toString();
    }
}

TEST(RbAlu, TcOverflowFlagMatchesWideArithmetic)
{
    Rng rng(18);
    int overflows = 0;
    for (int i = 0; i < 50000; ++i) {
        // Bias operands toward large magnitudes to hit overflow often.
        const Word a = rng.next() | (rng.chance(1, 2)
            ? 0xc000000000000000ull : 0);
        const Word b = rng.chance(1, 2) ? (rng.next() | a) : rng.next();
        const RbAddResult r = rbAdd(RbNum::fromTc(a), RbNum::fromTc(b));
        const __int128 wide = static_cast<__int128>(
            static_cast<SWord>(a)) + static_cast<SWord>(b);
        const bool expect_ovf =
            wide < -(static_cast<__int128>(1) << 63) ||
            wide >= (static_cast<__int128>(1) << 63);
        EXPECT_EQ(r.tcOverflow, expect_ovf) << a << " " << b;
        overflows += r.tcOverflow;
    }
    EXPECT_GT(overflows, 1000); // the bias actually produced overflow
}

TEST(RbAlu, BogusOverflowOccursAndIsCorrected)
{
    // Drive a long chain of adds; bogus overflow (carry-out cancelling an
    // opposite-sign MSD) must occur and never corrupt the value.
    Rng rng(19);
    int bogus = 0;
    RbNum acc = RbNum::fromTc(0x4000000000000000ull);
    Word expect = 0x4000000000000000ull;
    for (int i = 0; i < 200000; ++i) {
        const Word v = rng.next();
        const RbAddResult r = rbAdd(acc, RbNum::fromTc(v));
        acc = r.sum;
        expect += v;
        ASSERT_EQ(acc.toTc(), expect);
        bogus += r.bogusCorrected;
    }
    EXPECT_GT(bogus, 0);
}

TEST(RbAlu, ShiftLeftDigitsPaperExample)
{
    // <-1,1,0,1> (-3) shifted left one digit becomes -6; the paper shows
    // the MSD re-signing making the 4-digit result <-1,0,1,0>. In our
    // 64-digit numbers -3 << 1 is simply -6.
    const RbNum minus3(0b0101, 0b1000); // -8+4+1 = -3
    EXPECT_EQ(static_cast<SWord>(minus3.toTc()), -3);
    const RbNum shifted = rbShiftLeftDigits(minus3, 1);
    EXPECT_EQ(static_cast<SWord>(shifted.toTc()), -6);
}

TEST(RbAlu, ShiftLeftDigitsMatchesTcShift)
{
    Rng rng(20);
    for (int i = 0; i < 30000; ++i) {
        const RbNum x = randomRb(rng, rng.below(3));
        const unsigned k = static_cast<unsigned>(rng.below(64));
        const RbNum s = rbShiftLeftDigits(x, k);
        EXPECT_EQ(s.toTc(), x.toTc() << k);
        // Normalization keeps the sign scan valid.
        EXPECT_EQ(s.signNegative(),
                  static_cast<SWord>(s.toTc()) < 0);
    }
}

TEST(RbAlu, ScaledAddMatchesTc)
{
    Rng rng(21);
    for (int i = 0; i < 20000; ++i) {
        const Word a = rng.next();
        const Word b = rng.next();
        EXPECT_EQ(rbScaledAdd(RbNum::fromTc(a), 2,
                              RbNum::fromTc(b)).sum.toTc(),
                  (a << 2) + b);
        EXPECT_EQ(rbScaledAdd(RbNum::fromTc(a), 3,
                              RbNum::fromTc(b)).sum.toTc(),
                  (a << 3) + b);
    }
}

TEST(RbAlu, CompareZeroAgreesWithSignedCompare)
{
    Rng rng(22);
    for (int i = 0; i < 20000; ++i) {
        const RbNum x = randomRb(rng, rng.below(4));
        const SWord v = static_cast<SWord>(x.toTc());
        const int expect = v < 0 ? -1 : (v == 0 ? 0 : 1);
        EXPECT_EQ(rbCompareZero(x), expect);
    }
}

TEST(RbOverflow, ExtractLongwordMatchesSext32)
{
    Rng rng(23);
    for (int i = 0; i < 30000; ++i) {
        const RbNum x = randomRb(rng, rng.below(4));
        const RbNum lw = extractLongword(x);
        const Word expect = static_cast<Word>(
            static_cast<SWord>(static_cast<std::int32_t>(x.toTc())));
        EXPECT_EQ(lw.toTc(), expect) << x.toString();
        // Upper digits are clear so the RB number *is* the sign-extended
        // longword.
        EXPECT_EQ((lw.plus() | lw.minus()) >> 32, 0u);
        EXPECT_EQ(lw.signNegative(), static_cast<SWord>(expect) < 0);
    }
}

TEST(RbOverflow, NormalizeQuadIdempotentOnNormalValues)
{
    Rng rng(24);
    for (int i = 0; i < 10000; ++i) {
        const RbNum x = randomRb(rng, rng.below(4));
        const NormalizeResult n = normalizeQuad(x, 0);
        EXPECT_EQ(n.value.toTc(), x.toTc());
        EXPECT_FALSE(n.tcOverflow);
        EXPECT_FALSE(n.bogusCorrected);
    }
}

} // namespace
} // namespace rbsim
