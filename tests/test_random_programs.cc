/**
 * @file
 * Randomized whole-pipeline fuzzing: generate structured random programs
 * (counted loops over random bodies of arithmetic, logicals, shifts,
 * compares, cmovs, byte ops, loads/stores into a sandbox, and forward
 * branches), then run each on all four machines — and limited-bypass and
 * steering variants — under lockstep co-simulation. Any timing-model bug
 * that corrupts architectural state (wrong bypass, bad squash, stale
 * operand, LSQ ordering violation) trips the checker.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/core.hh"
#include "isa/builder.hh"
#include "sim/cosim.hh"

namespace rbsim
{
namespace
{

/** Registers the generator uses freely. */
constexpr unsigned firstTemp = 1;
constexpr unsigned lastTemp = 20;
// r21 = sandbox base, r22 = loop counter, r23..r25 reserved.

Reg
randReg(Rng &rng)
{
    return R(firstTemp + static_cast<unsigned>(
                 rng.below(lastTemp - firstTemp + 1)));
}

/** Emit one random body instruction. */
void
emitRandomInst(CodeBuilder &cb, Rng &rng,
               std::vector<Label> &pending_targets)
{
    const Reg a = randReg(rng);
    const Reg b = randReg(rng);
    const Reg c = randReg(rng);
    const Reg sandbox = R(21);

    switch (rng.below(12)) {
      case 0: {
        static const Opcode arith[] = {
            Opcode::ADDQ, Opcode::SUBQ, Opcode::ADDL, Opcode::SUBL,
            Opcode::S4ADDQ, Opcode::S8ADDQ, Opcode::S4SUBQ,
            Opcode::S8SUBQ};
        cb.op3(arith[rng.below(std::size(arith))], a, b, c);
        break;
      }
      case 1: {
        static const Opcode logical[] = {
            Opcode::AND, Opcode::BIS, Opcode::XOR, Opcode::BIC,
            Opcode::ORNOT, Opcode::EQV};
        cb.op3(logical[rng.below(std::size(logical))], a, b, c);
        break;
      }
      case 2: {
        static const Opcode shifts[] = {Opcode::SLL, Opcode::SRL,
                                        Opcode::SRA};
        cb.opi(shifts[rng.below(3)], a,
               static_cast<std::uint8_t>(rng.below(64)), c);
        break;
      }
      case 3: {
        static const Opcode cmps[] = {Opcode::CMPEQ, Opcode::CMPLT,
                                      Opcode::CMPLE, Opcode::CMPULT,
                                      Opcode::CMPULE};
        cb.op3(cmps[rng.below(5)], a, b, c);
        break;
      }
      case 4: {
        static const Opcode cmovs[] = {
            Opcode::CMOVEQ, Opcode::CMOVNE, Opcode::CMOVLT,
            Opcode::CMOVGE, Opcode::CMOVLE, Opcode::CMOVGT,
            Opcode::CMOVLBS, Opcode::CMOVLBC};
        cb.op3(cmovs[rng.below(std::size(cmovs))], a, b, c);
        break;
      }
      case 5: {
        static const Opcode bytes[] = {Opcode::EXTBL, Opcode::EXTWL,
                                       Opcode::EXTLL, Opcode::INSBL,
                                       Opcode::MSKBL, Opcode::ZAPNOT};
        cb.opi(bytes[rng.below(std::size(bytes))], a,
               static_cast<std::uint8_t>(rng.below(8)), c);
        break;
      }
      case 6: {
        static const Opcode counts[] = {Opcode::CTLZ, Opcode::CTTZ,
                                        Opcode::CTPOP};
        cb.op1(counts[rng.below(3)], a, c);
        break;
      }
      case 7:
        // Sandbox load: a small aligned displacement off the base.
        cb.load(rng.chance(1, 2) ? Opcode::LDQ : Opcode::LDL, c,
                static_cast<std::int32_t>(rng.below(64)) * 8, R(21));
        break;
      case 8:
        // Sandbox store.
        cb.store(rng.chance(1, 2) ? Opcode::STQ : Opcode::STL, a,
                 static_cast<std::int32_t>(rng.below(64)) * 8, sandbox);
        break;
      case 9: {
        // Forward conditional branch over the next few instructions;
        // the target label is bound by the caller a bit later.
        static const Opcode brs[] = {Opcode::BEQ, Opcode::BNE,
                                     Opcode::BLT, Opcode::BGE,
                                     Opcode::BLBS, Opcode::BLBC};
        const Label skip = cb.newLabel();
        cb.branch(brs[rng.below(std::size(brs))], a, skip);
        pending_targets.push_back(skip);
        break;
      }
      case 10:
        cb.opi(Opcode::MULQ, a,
               static_cast<std::uint8_t>(rng.below(256)), c);
        break;
      default:
        cb.lda(c, static_cast<std::int32_t>(rng.range(-512, 511)), b);
        break;
    }
}

/** A structured random program: init, two leaf subroutines, a counted
 * loop over a random body with calls and a data-dependent jump table,
 * checksum stores, halt. Always terminates, and exercises RAS/BTB
 * prediction and repair under squashes. */
Program
randomProgram(std::uint64_t seed)
{
    Rng rng(seed);
    CodeBuilder cb("fuzz-" + std::to_string(seed));
    const Addr sandbox = 0x40000;
    const Addr jtab = 0x48000;
    cb.dataWords(sandbox, [&] {
        std::vector<Word> init(64);
        for (Word &w : init)
            w = rng.next();
        return init;
    }());

    // Two random leaf subroutines (r26 = link register).
    std::array<Label, 2> subs{cb.newLabel(), cb.newLabel()};
    const Label past_subs = cb.newLabel();
    cb.br(past_subs);
    std::vector<Label> sub_pending;
    for (const Label &sub : subs) {
        cb.bind(sub);
        const unsigned len = 3 + static_cast<unsigned>(rng.below(4));
        for (unsigned i = 0; i < len; ++i)
            emitRandomInst(cb, rng, sub_pending);
        while (!sub_pending.empty()) {
            cb.bind(sub_pending.back());
            sub_pending.pop_back();
        }
        cb.ret(R(26));
    }
    cb.bind(past_subs);

    for (unsigned r = firstTemp; r <= lastTemp; ++r)
        cb.ldiq(R(r), static_cast<std::int64_t>(rng.next()));
    cb.ldiq(R(21), static_cast<std::int64_t>(sandbox));
    cb.ldiq(R(22), 40 + rng.below(40)); // loop trips
    cb.ldiq(R(23), static_cast<std::int64_t>(jtab));

    const Label loop = cb.newLabel();
    cb.bind(loop);
    std::vector<Label> pending;
    const unsigned body = 12 + static_cast<unsigned>(rng.below(30));
    const unsigned call_at = static_cast<unsigned>(rng.below(body));
    const unsigned jtab_at = static_cast<unsigned>(rng.below(body));
    std::array<Label, 2> cases{cb.newLabel(), cb.newLabel()};
    const Label merge = cb.newLabel();
    for (unsigned i = 0; i < body; ++i) {
        emitRandomInst(cb, rng, pending);
        if (i == call_at)
            cb.bsr(R(26), subs[rng.below(2)]);
        if (i == jtab_at) {
            // Data-dependent two-way jump table (BTB-predicted).
            while (!pending.empty()) { // no branches into the cases
                cb.bind(pending.back());
                pending.pop_back();
            }
            cb.opi(Opcode::AND, randReg(rng), 1, R(24));
            cb.op3(Opcode::S8ADDQ, R(24), R(23), R(24));
            cb.load(Opcode::LDQ, R(24), 0, R(24));
            cb.jmp(R(25), R(24));
            cb.bind(cases[0]);
            cb.opi(Opcode::ADDQ, R(1), 1, R(1));
            cb.br(merge);
            cb.bind(cases[1]);
            cb.opi(Opcode::XOR, R(2), 255, R(2));
            cb.bind(merge);
        }
        // Bind skip targets within a few instructions so every branch
        // jumps forward (termination is structural).
        while (!pending.empty() && rng.chance(1, 2)) {
            cb.bind(pending.back());
            pending.pop_back();
        }
    }
    while (!pending.empty()) {
        cb.bind(pending.back());
        pending.pop_back();
    }
    // Fold live state into the sandbox so everything is observable.
    for (unsigned r = firstTemp; r <= 8; ++r)
        cb.store(Opcode::STQ, R(r),
                 static_cast<std::int32_t>((r - firstTemp) * 8), R(21));
    cb.opi(Opcode::SUBQ, R(22), 1, R(22));
    cb.branch(Opcode::BNE, R(22), loop);
    cb.halt();

    cb.dataWords(jtab, {cb.labelByteAddr(cases[0]),
                        cb.labelByteAddr(cases[1])});
    return cb.finish();
}

class RandomPrograms : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomPrograms, CosimCleanOnAllMachineVariants)
{
    const Program prog = randomProgram(GetParam());

    std::vector<MachineConfig> configs;
    for (MachineKind kind : {MachineKind::Baseline, MachineKind::RbLimited,
                             MachineKind::RbFull, MachineKind::Ideal}) {
        for (unsigned width : {4u, 8u})
            configs.push_back(MachineConfig::make(kind, width));
    }
    {
        MachineConfig c = MachineConfig::makeIdealLimited(8, 0b001);
        configs.push_back(c);
        c = MachineConfig::makeIdealLimited(4, 0b100);
        configs.push_back(c);
        c = MachineConfig::make(MachineKind::RbLimited, 8);
        c.holeAwareScheduling = false;
        configs.push_back(c);
        c = MachineConfig::make(MachineKind::RbFull, 8);
        c.steering = Steering::DependenceAware;
        configs.push_back(c);
        c = MachineConfig::make(MachineKind::RbLimited, 8);
        c.steering = Steering::ClassPartition;
        configs.push_back(c);
    }

    Word golden_checksum = 0;
    bool have_golden = false;
    for (const MachineConfig &cfg : configs) {
        OooCore core(cfg, prog);
        CosimChecker checker(prog);
        core.onRetire(
            [&checker](const RobEntry &e) { checker.onRetire(e); });
        ASSERT_TRUE(core.run(3'000'000)) << cfg.label;
        ASSERT_EQ(checker.checked(), core.stats().retired) << cfg.label;
        ASSERT_GT(core.stats().retired, 500u);
        // All machines must agree on final architectural memory.
        Word checksum = 0;
        for (unsigned i = 0; i < 8; ++i)
            checksum ^= core.committedMem().read64(0x40000 + i * 8) +
                        i * 0x9e3779b9;
        if (!have_golden) {
            golden_checksum = checksum;
            have_golden = true;
        } else {
            ASSERT_EQ(checksum, golden_checksum) << cfg.label;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{21}));

} // namespace
} // namespace rbsim
