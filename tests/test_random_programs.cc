/**
 * @file
 * Randomized whole-pipeline fuzzing: structured random programs from the
 * fuzz generator library (counted loops over random bodies of
 * arithmetic, logicals, shifts, compares, cmovs, byte ops, multiplies,
 * loads/stores into a sandbox, forward branches, leaf calls, and a
 * data-dependent jump table), each run on all four machines — and
 * limited-bypass and steering variants — under lockstep co-simulation.
 * Any timing-model bug that corrupts architectural state (wrong bypass,
 * bad squash, stale operand, LSQ ordering violation) trips the checker.
 *
 * This is the fixed-matrix regression sibling of rbsim-fuzz: the same
 * generator, a deterministic seed range, and a hand-picked config set
 * covering every machine variant. Open-ended exploration (fuzzed
 * configs, value-level oracles, shrinking) lives in the rbsim-fuzz tool.
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "fuzz/generator.hh"
#include "sim/cosim.hh"

namespace rbsim
{
namespace
{

TEST(FuzzGenerator, LoweringIsDeterministic)
{
    // The shrinker depends on lowering being a pure function of the
    // recipe: same recipe, same program.
    Rng rng(7);
    const fuzz::ProgRecipe recipe =
        fuzz::generateRecipe(rng, fuzz::GenOptions());
    const Program a = fuzz::lowerRecipe(recipe);
    const Program b = fuzz::lowerRecipe(recipe);
    ASSERT_EQ(a.code.size(), b.code.size());
    for (std::size_t i = 0; i < a.code.size(); ++i)
        EXPECT_TRUE(a.code[i] == b.code[i]) << "inst " << i;
}

class RandomPrograms : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomPrograms, CosimCleanOnAllMachineVariants)
{
    const Program prog = fuzz::generateProgram(GetParam());

    std::vector<MachineConfig> configs;
    for (MachineKind kind : {MachineKind::Baseline, MachineKind::RbLimited,
                             MachineKind::RbFull, MachineKind::Ideal}) {
        for (unsigned width : {4u, 8u})
            configs.push_back(MachineConfig::make(kind, width));
    }
    {
        MachineConfig c = MachineConfig::makeIdealLimited(8, 0b001);
        configs.push_back(c);
        c = MachineConfig::makeIdealLimited(4, 0b100);
        configs.push_back(c);
        c = MachineConfig::make(MachineKind::RbLimited, 8);
        c.holeAwareScheduling = false;
        configs.push_back(c);
        c = MachineConfig::make(MachineKind::RbFull, 8);
        c.steering = Steering::DependenceAware;
        configs.push_back(c);
        c = MachineConfig::make(MachineKind::RbLimited, 8);
        c.steering = Steering::ClassPartition;
        configs.push_back(c);
    }

    Word golden_checksum = 0;
    bool have_golden = false;
    for (const MachineConfig &cfg : configs) {
        OooCore core(cfg, prog);
        CosimChecker checker(prog);
        core.onRetire(
            [&checker](const RobEntry &e) { checker.onRetire(e); });
        ASSERT_TRUE(core.run(3'000'000)) << cfg.label;
        ASSERT_EQ(checker.checked(), core.stats().retired) << cfg.label;
        ASSERT_GT(core.stats().retired, 500u);
        // All machines must agree on final architectural memory.
        Word checksum = 0;
        for (unsigned i = 0; i < 8; ++i)
            checksum ^= core.committedMem().read64(
                            fuzz::fuzzSandboxBase + i * 8) +
                        i * 0x9e3779b9;
        if (!have_golden) {
            golden_checksum = checksum;
            have_golden = true;
        } else {
            ASSERT_EQ(checksum, golden_checksum) << cfg.label;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{21}));

} // namespace
} // namespace rbsim
