/**
 * @file
 * Tests for the 20 SPEC-like workloads: every program assembles, runs to
 * completion on the reference interpreter with a sane dynamic length,
 * scales with the scale knob, and runs clean (co-simulated) through the
 * timing core.
 */

#include <gtest/gtest.h>

#include "func/interp.hh"
#include "sim/simulator.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

namespace rbsim
{
namespace
{

TEST(Workloads, RegistryHasTwentyNamedBenchmarks)
{
    EXPECT_EQ(allWorkloads().size(), 20u);
    EXPECT_EQ(suiteWorkloads("spec95").size(), 8u);
    EXPECT_EQ(suiteWorkloads("spec2000").size(), 12u);
    EXPECT_EQ(findWorkload("mcf").suite, "spec2000");
    EXPECT_THROW(findWorkload("nonesuch"), std::out_of_range);
}

class WorkloadRun : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WorkloadRun, RunsToCompletionOnReference)
{
    const WorkloadInfo &info = findWorkload(GetParam());
    WorkloadParams wp;
    const Program p = info.build(wp);
    EXPECT_EQ(p.name, std::string(GetParam()) == "gcc00"
                          ? std::string("gcc00")
                          : p.name); // name sanity below
    EXPECT_FALSE(p.code.empty());

    Interp in(p);
    in.run(3'000'000);
    EXPECT_TRUE(in.halted()) << info.name << " did not halt";
    // Dynamic length in the intended range: enough to exercise the
    // machine, short enough for the benchmark sweeps.
    EXPECT_GT(in.instsExecuted(), 60'000u) << info.name;
    EXPECT_LT(in.instsExecuted(), 900'000u) << info.name;
}

TEST_P(WorkloadRun, ScaleKnobGrowsDynamicLength)
{
    const WorkloadInfo &info = findWorkload(GetParam());
    WorkloadParams wp1;
    WorkloadParams wp3;
    wp3.scale = 3;
    const Program p1 = info.build(wp1);
    const Program p3 = info.build(wp3);
    Interp a(p1);
    Interp b(p3);
    a.run(10'000'000);
    b.run(10'000'000);
    ASSERT_TRUE(a.halted() && b.halted());
    EXPECT_GT(b.instsExecuted(), 2 * a.instsExecuted()) << info.name;
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadRun,
    ::testing::Values("go", "m88ksim", "gcc", "compress", "li", "ijpeg",
                      "perl", "vortex", "gzip", "vpr", "gcc00", "mcf",
                      "crafty", "parser", "eon", "perlbmk", "gap",
                      "vortex00", "bzip2", "twolf"),
    [](const ::testing::TestParamInfo<const char *> &pi) {
        return std::string(pi.param);
    });

TEST(Workloads, CosimCleanOnTimingCoreSample)
{
    // Full sweeps happen in the benches; here a representative sample
    // (pointer-chaser, interpreter-dispatch, add-chain, byte-heavy) runs
    // co-simulated on the two extreme machines.
    for (const char *name : {"gap", "m88ksim", "bzip2"}) {
        const Program p = findWorkload(name).build(WorkloadParams{});
        for (MachineKind kind : {MachineKind::RbLimited,
                                 MachineKind::Ideal}) {
            const MachineConfig cfg = MachineConfig::make(kind, 8);
            const SimResult r = simulate(cfg, p);
            EXPECT_TRUE(r.halted) << name << " on " << cfg.label;
            EXPECT_EQ(r.counter("cosim.checked"), r.counter("core.retired"));
        }
    }
}

TEST(Workloads, InstructionMixResemblesTable1)
{
    // Aggregate dynamic mix across all 20 workloads: the paper's Table 1
    // reports ~33% RB-producing instructions, ~37% memory accesses,
    // ~14% conditional branches, ~26% other. Our synthetic suite must
    // land in the same neighborhood (loose bands).
    std::array<std::uint64_t, numTable1Rows> totals{};
    std::uint64_t all = 0;
    for (const WorkloadInfo &w : allWorkloads()) {
        const Program p = w.build(WorkloadParams{});
        Interp in(p);
        in.run(3'000'000);
        ASSERT_TRUE(in.halted()) << w.name;
        Interp in2(p);
        while (!in2.halted()) {
            const StepRecord rec = in2.step();
            ++totals[static_cast<unsigned>(table1Row(rec.inst.op))];
            ++all;
        }
    }
    auto frac = [&](Table1Row row) {
        return double(totals[static_cast<unsigned>(row)]) / double(all);
    };
    const double rb_producers = frac(Table1Row::ArithRbRb) +
                                frac(Table1Row::CmovSign) +
                                frac(Table1Row::CmovZero);
    const double memory = frac(Table1Row::MemAccess);
    const double branches = frac(Table1Row::CondBranch);
    EXPECT_GT(rb_producers, 0.20);
    EXPECT_LT(rb_producers, 0.50);
    EXPECT_GT(memory, 0.15);
    EXPECT_LT(memory, 0.45);
    EXPECT_GT(branches, 0.06);
    EXPECT_LT(branches, 0.25);
}

const WorkloadInfo &
findMicro(const std::string &name)
{
    for (const WorkloadInfo &w : microWorkloads()) {
        if (w.name == name)
            return w;
    }
    throw std::out_of_range(name);
}

TEST(Workloads, MicroSuiteRunsCleanEverywhere)
{
    for (const WorkloadInfo &w : microWorkloads()) {
        const Program p = w.build(WorkloadParams{});
        Interp in(p);
        in.run(2'000'000);
        ASSERT_TRUE(in.halted()) << w.name;
        EXPECT_GT(in.instsExecuted(), 4000u) << w.name;
        const SimResult r =
            simulate(MachineConfig::make(MachineKind::RbLimited, 8), p);
        EXPECT_TRUE(r.halted) << w.name;
        EXPECT_EQ(r.counter("cosim.checked"),
                  r.counter("core.retired")) << w.name;
    }
}

TEST(Workloads, MicroKernelsIsolateTheAdders)
{
    // u-depchain must separate 1-cycle from 2-cycle adders; u-shiftxor
    // must invert the ordering (the Table 3 conversion cost).
    const Program dep =
        findMicro("u-depchain").build(WorkloadParams{});
    const SimResult dep_base =
        simulate(MachineConfig::make(MachineKind::Baseline, 8), dep);
    const SimResult dep_rb =
        simulate(MachineConfig::make(MachineKind::RbFull, 8), dep);
    EXPECT_GT(dep_rb.ipc(), dep_base.ipc() * 1.5);

    const Program sx =
        findMicro("u-shiftxor").build(WorkloadParams{});
    const SimResult sx_base =
        simulate(MachineConfig::make(MachineKind::Baseline, 8), sx);
    const SimResult sx_rb =
        simulate(MachineConfig::make(MachineKind::RbFull, 8), sx);
    EXPECT_LT(sx_rb.ipc(), sx_base.ipc());
}

} // namespace
} // namespace rbsim
