/**
 * @file
 * Architectural checkpoints (src/sim/checkpoint.hh) and the functional
 * fast-forward engine that captures them (src/sim/fastfwd.hh):
 *  - MemImage copy-on-write page sharing: snapshots stay intact under
 *    writes and resets on either side, and restores re-share;
 *  - serialize()/deserialize() round-trips bit-exactly and fingerprint()
 *    identifies content;
 *  - a checkpoint captured mid-program resumes on a fresh core and runs
 *    to completion under cosim lockstep — bit-exactness against the
 *    reference model on every retired instruction — across the Figure 12
 *    machine grid with both the wakeup and the polled scheduler;
 *  - Simulator::checkpoint() captures a detailed run stopped mid-flight
 *    (occupied ROB/LSQ, possibly wrapped) and the chain keeps absolute
 *    dynamic-stream positions.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "func/interp.hh"
#include "sim/checkpoint.hh"
#include "sim/fastfwd.hh"
#include "sim/sampling.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace rbsim
{
namespace
{

Program
testProgram(const char *workload = "compress")
{
    WorkloadParams wp;
    return findWorkload(workload).build(wp);
}

/** The Figure 12 machines (4-wide) with the scheduler knob applied. */
std::vector<MachineConfig>
fig12Grid(bool polled)
{
    std::vector<MachineConfig> grid;
    for (MachineKind kind :
         {MachineKind::Baseline, MachineKind::RbLimited,
          MachineKind::RbFull, MachineKind::Ideal}) {
        MachineConfig cfg = MachineConfig::make(kind, 4);
        cfg.polledScheduler = polled;
        grid.push_back(cfg);
    }
    return grid;
}

// --------------------------------------------------- CoW page sharing

TEST(MemImageCow, SnapshotSurvivesWritesOnEitherSide)
{
    MemImage img;
    img.write64(0x1000, 0x1111);
    img.write64(0x2000, 0x2222);

    const MemImage::PageMap snap = img.snapshotPages();

    // A write to the live image must not leak into the snapshot...
    img.write64(0x1000, 0xdead);
    EXPECT_EQ(img.read64(0x1000), 0xdeadu);

    MemImage restored;
    restored.restorePages(snap);
    EXPECT_EQ(restored.read64(0x1000), 0x1111u);
    EXPECT_EQ(restored.read64(0x2000), 0x2222u);

    // ...and a write after a restore must not corrupt the snapshot for
    // the NEXT restore (checkpoints are reused across windows).
    restored.write64(0x2000, 0xbeef);
    MemImage again;
    again.restorePages(snap);
    EXPECT_EQ(again.read64(0x2000), 0x2222u);
}

TEST(MemImageCow, ResetInPlaceKeepsLiveSnapshotsIntact)
{
    MemImage img;
    img.write64(0x3000, 77);
    const MemImage::PageMap snap = img.snapshotPages();

    img.reset(); // must replace, not zero through, the shared page
    EXPECT_EQ(img.read64(0x3000), 0u);

    MemImage restored;
    restored.restorePages(snap);
    EXPECT_EQ(restored.read64(0x3000), 77u);
}

// ----------------------------------------------- serialized round-trip

ArchCheckpoint
captureAt(const MachineConfig &cfg, const Program &prog,
          std::uint64_t insts)
{
    FastForward ff(cfg, prog);
    ff.run(insts);
    ArchCheckpoint ck;
    ff.capture(ck);
    return ck;
}

TEST(CheckpointSerialize, RoundTripIsBitExact)
{
    const Program prog = testProgram();
    const MachineConfig cfg = MachineConfig::make(MachineKind::RbFull, 4);
    const ArchCheckpoint ck = captureAt(cfg, prog, 5000);

    const std::string bytes = ck.serialize();
    const ArchCheckpoint back = ArchCheckpoint::deserialize(bytes);

    EXPECT_EQ(back.serialize(), bytes);
    EXPECT_EQ(back.fingerprint(), ck.fingerprint());
    EXPECT_EQ(back.progHash, prog.hash());
    EXPECT_EQ(back.pc, ck.pc);
    EXPECT_EQ(back.instsExecuted, 5000u);
    EXPECT_EQ(back.regs, ck.regs);
    ASSERT_EQ(back.pages.size(), ck.pages.size());
    for (const auto &[page, data] : ck.pages) {
        const auto it = back.pages.find(page);
        ASSERT_NE(it, back.pages.end());
        EXPECT_EQ(*it->second, *data);
    }
}

TEST(CheckpointSerialize, FingerprintIdentifiesContent)
{
    const Program prog = testProgram();
    const MachineConfig cfg = MachineConfig::make(MachineKind::RbFull, 4);
    const ArchCheckpoint a = captureAt(cfg, prog, 5000);
    const ArchCheckpoint b = captureAt(cfg, prog, 5000);
    const ArchCheckpoint c = captureAt(cfg, prog, 6000);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(CheckpointSerialize, MalformedImagesThrow)
{
    const Program prog = testProgram();
    const MachineConfig cfg = MachineConfig::make(MachineKind::RbFull, 4);
    const std::string bytes = captureAt(cfg, prog, 1000).serialize();

    EXPECT_THROW(ArchCheckpoint::deserialize(""), std::runtime_error);
    EXPECT_THROW(
        ArchCheckpoint::deserialize(bytes.substr(0, bytes.size() / 2)),
        std::runtime_error);
    std::string badMagic = bytes;
    badMagic[0] ^= 0xff;
    EXPECT_THROW(ArchCheckpoint::deserialize(badMagic),
                 std::runtime_error);
    EXPECT_THROW(ArchCheckpoint::deserialize(bytes + "x"),
                 std::runtime_error);
}

// ----------------------------------------- fast-forward engine basics

TEST(FastForwardEngine, TracksTheReferenceInterpreter)
{
    const Program prog = testProgram();
    const MachineConfig cfg = MachineConfig::make(MachineKind::RbFull, 4);

    FastForward ff(cfg, prog);
    Interp plain(prog);
    ff.run(3000);
    plain.run(3000);

    EXPECT_EQ(ff.instsExecuted(), 3000u);
    EXPECT_EQ(ff.ref().pc(), plain.pc());
    for (unsigned r = 0; r < numArchRegs; ++r)
        EXPECT_EQ(ff.ref().reg(r), plain.reg(r)) << "r" << r;
}

TEST(FastForwardEngine, RestoreRewindsToTheCapturedPoint)
{
    const Program prog = testProgram();
    const MachineConfig cfg = MachineConfig::make(MachineKind::RbFull, 4);

    FastForward ff(cfg, prog);
    ff.run(2000);
    ArchCheckpoint ck;
    ff.capture(ck);

    ff.run(4000); // move past the capture point
    ff.restore(ck);
    EXPECT_EQ(ff.instsExecuted(), 2000u);
    EXPECT_EQ(ff.ref().pc(), ck.pc);

    // Replaying from the restore reaches the same state as a straight
    // run to the same position.
    ff.run(1000);
    Interp plain(prog);
    plain.run(3000);
    EXPECT_EQ(ff.ref().pc(), plain.pc());
    for (unsigned r = 0; r < numArchRegs; ++r)
        EXPECT_EQ(ff.ref().reg(r), plain.reg(r)) << "r" << r;
}

TEST(FastForwardEngine, CaptureAfterHaltThrows)
{
    const Program prog = testProgram();
    const MachineConfig cfg = MachineConfig::make(MachineKind::RbFull, 4);
    FastForward ff(cfg, prog);
    while (!ff.halted())
        ff.run(1u << 20);
    ArchCheckpoint ck;
    EXPECT_THROW(ff.capture(ck), std::logic_error);
}

// ------------------------------------- resume under lockstep cosim

/**
 * The acceptance check: a checkpoint captured mid-program must resume
 * on a fresh core and run to HALT with co-simulation verifying every
 * retired register write, memory write, and control transfer against
 * the reference model — on every Figure 12 machine, both schedulers.
 */
void
expectResumeLockstep(bool polled)
{
    const Program prog = testProgram();
    for (const MachineConfig &cfg : fig12Grid(polled)) {
        auto ck = std::make_shared<ArchCheckpoint>(
            captureAt(cfg, prog, 4000));
        SimOptions opts;
        opts.startFrom = ck;
        opts.cosim = true;
        const SimResult res = simulate(cfg, prog, opts); // throws on
                                                         // divergence
        EXPECT_TRUE(res.halted)
            << cfg.label << (polled ? " (polled)" : " (wakeup)");
        EXPECT_GT(res.counter("cosim.checked"), 0u) << cfg.label;
    }
}

TEST(CheckpointResume, Fig12GridWakeupLockstep)
{
    expectResumeLockstep(false);
}

TEST(CheckpointResume, Fig12GridPolledLockstep)
{
    expectResumeLockstep(true);
}

TEST(CheckpointResume, WrongProgramAndHaltedCheckpointsAreRejected)
{
    const Program prog = testProgram();
    const MachineConfig cfg = MachineConfig::make(MachineKind::RbFull, 4);
    auto ck =
        std::make_shared<ArchCheckpoint>(captureAt(cfg, prog, 1000));

    const Program other = testProgram("go");
    SimOptions opts;
    opts.startFrom = ck;
    EXPECT_THROW(simulate(cfg, other, opts), std::invalid_argument);

    auto halted = std::make_shared<ArchCheckpoint>(*ck);
    halted->pc = prog.code.size(); // the run-off-the-end halt state
    opts.startFrom = halted;
    EXPECT_THROW(simulate(cfg, prog, opts), std::logic_error);
}

// ------------------------------- mid-flight detailed-run checkpoints

TEST(CheckpointResume, MidFlightDetailedCaptureResumesExactly)
{
    // Stop a detailed run on an instruction budget: the ROB and LSQ are
    // occupied (and with a budget past robEntries, the ROB has wrapped),
    // yet the retired architectural state the cosim reference holds is a
    // complete checkpoint — in-flight work is simply not architectural.
    const Program prog = testProgram();
    MachineConfig cfg = MachineConfig::make(MachineKind::RbFull, 4);
    ASSERT_GT(6000u, cfg.robEntries);

    Simulator sim(cfg);
    SimOptions opts;
    opts.maxInsts = 6000;
    const SimResult stopped = sim.run(prog, opts);
    ASSERT_FALSE(stopped.halted);
    ASSERT_TRUE(stopped.instLimited);

    ArchCheckpoint ck;
    sim.checkpoint(ck);
    EXPECT_EQ(ck.instsExecuted, 6000u);

    // The capture equals the functional model's view of the same point.
    const ArchCheckpoint ffView = captureAt(cfg, prog, 6000);
    EXPECT_EQ(ck.pc, ffView.pc);
    EXPECT_EQ(ck.regs, ffView.regs);

    // And it resumes to completion under lockstep verification.
    SimOptions resume;
    resume.startFrom = std::make_shared<ArchCheckpoint>(ck);
    const SimResult done = simulate(cfg, prog, resume);
    EXPECT_TRUE(done.halted);
}

TEST(CheckpointResume, ChainedCheckpointsKeepAbsolutePositions)
{
    const Program prog = testProgram();
    const MachineConfig cfg = MachineConfig::make(MachineKind::RbFull, 4);

    Simulator sim(cfg);
    SimOptions opts;
    opts.maxInsts = 2000;
    ASSERT_FALSE(sim.run(prog, opts).halted);
    ArchCheckpoint first;
    sim.checkpoint(first);
    EXPECT_EQ(first.instsExecuted, 2000u);

    // Resume from the first and stop again: the second checkpoint's
    // stream position must be absolute, not window-relative.
    SimOptions opts2;
    opts2.startFrom = std::make_shared<ArchCheckpoint>(first);
    opts2.maxInsts = 1500;
    ASSERT_FALSE(sim.run(prog, opts2).halted);
    ArchCheckpoint second;
    sim.checkpoint(second);
    EXPECT_EQ(second.instsExecuted, 3500u);

    // The architectural half must match a straight-line capture at the
    // same absolute position. (The warm half legitimately differs: the
    // detailed core trains predictors and caches through speculation,
    // the functional fast-forward in program order.)
    const ArchCheckpoint ref = captureAt(cfg, prog, 3500);
    EXPECT_EQ(second.pc, ref.pc);
    EXPECT_EQ(second.regs, ref.regs);
    ASSERT_EQ(second.pages.size(), ref.pages.size());
    for (const auto &[page, data] : ref.pages) {
        const auto it = second.pages.find(page);
        ASSERT_NE(it, second.pages.end());
        EXPECT_EQ(*it->second, *data);
    }
}

TEST(CheckpointResume, CheckpointRequiresCosimAndAMidFlightStop)
{
    const Program prog = testProgram();
    const MachineConfig cfg = MachineConfig::make(MachineKind::RbFull, 4);
    Simulator sim(cfg);
    ArchCheckpoint ck;

    SimOptions noCosim;
    noCosim.cosim = false;
    noCosim.maxInsts = 1000;
    sim.run(prog, noCosim);
    EXPECT_THROW(sim.checkpoint(ck), std::logic_error);

    ASSERT_TRUE(sim.run(prog).halted);
    EXPECT_THROW(sim.checkpoint(ck), std::logic_error);
}

} // namespace
} // namespace rbsim
