/**
 * @file
 * Regression replay of the committed repro corpus (tests/corpus/).
 *
 * Every file minted by a past fuzzing campaign — or hand-written for a
 * bug class the generator once tripped — is replayed through its oracle
 * and must be clean: these are fixed bugs, and a replay failure means a
 * regression. Repros minted from *planted* bugs record the honest
 * configuration, so they too replay clean (their notes document the
 * plant that produced them; test_fuzz re-fails them under the plant).
 */

#include <gtest/gtest.h>

#include "fuzz/corpus.hh"

#ifndef RBSIM_CORPUS_DIR
#error "RBSIM_CORPUS_DIR must point at tests/corpus"
#endif

namespace rbsim
{
namespace
{

using namespace rbsim::fuzz;

std::vector<std::string>
corpusFiles()
{
    return listCorpus(RBSIM_CORPUS_DIR);
}

TEST(Corpus, UnknownOracleReplayFailsWithDiagnostic)
{
    // A .repro naming an oracle this build does not know (typically a
    // repro minted by a newer build) must come back as a *failed*
    // replay with a diagnostic — never a silent PASS, never an abort of
    // the whole replay batch.
    ReproFile repro = loadRepro(std::string(RBSIM_CORPUS_DIR) +
                                "/sched-bypass-widen-min.repro");
    repro.oracle = "oracle-from-the-future";
    const OracleResult r = replayRepro(repro);
    EXPECT_TRUE(r.failed);
    EXPECT_NE(r.detail.find("unknown oracle"), std::string::npos)
        << r.detail;
    EXPECT_NE(r.detail.find("oracle-from-the-future"), std::string::npos)
        << r.detail;
    // The diagnostic lists what this build does support.
    EXPECT_NE(r.detail.find("cosim"), std::string::npos) << r.detail;
    EXPECT_NE(r.detail.find("sched"), std::string::npos) << r.detail;
}

TEST(Corpus, IsCommittedAndNonTrivial)
{
    // The committed corpus must exist: an empty directory would make the
    // replay suite below pass vacuously.
    EXPECT_GE(corpusFiles().size(), 10u) << "corpus dir: "
                                         << RBSIM_CORPUS_DIR;
}

class CorpusReplay : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CorpusReplay, ReplaysClean)
{
    const ReproFile repro = loadRepro(GetParam());
    EXPECT_FALSE(repro.oracle.empty());
    const OracleResult r = replayRepro(repro);
    EXPECT_FALSE(r.failed)
        << GetParam() << "\n  " << r.detail
        << (repro.note.empty() ? "" : "\n  note: " + repro.note);
}

std::string
reproTestName(const ::testing::TestParamInfo<std::string> &info)
{
    // File stem, sanitized to gtest's [A-Za-z0-9_] name alphabet.
    std::string stem = info.param;
    const std::size_t slash = stem.find_last_of('/');
    if (slash != std::string::npos)
        stem = stem.substr(slash + 1);
    const std::size_t dot = stem.find_last_of('.');
    if (dot != std::string::npos)
        stem = stem.substr(0, dot);
    for (char &c : stem) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return stem.empty() ? "unnamed" : stem;
}

INSTANTIATE_TEST_SUITE_P(Files, CorpusReplay,
                         ::testing::ValuesIn(corpusFiles()),
                         reproTestName);

} // namespace
} // namespace rbsim
