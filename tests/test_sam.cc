/**
 * @file
 * Property tests for the sum-addressed memory decoder (paper section
 * 3.6): per-row equality matches the full addition, exactly one row
 * asserts, and the 3-input redundant binary variant agrees.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/sam.hh"
#include "rb/rbalu.hh"

namespace rbsim
{
namespace
{

TEST(Sam, DecodeEqualsFullAdditionRandom)
{
    SamDecoder sam(64, 64);
    Rng rng(71);
    for (int i = 0; i < 50000; ++i) {
        const Addr base = rng.next() & 0xffffffffull;
        const Addr disp = rng.next() & 0xffff;
        const unsigned expect =
            static_cast<unsigned>(((base + disp) / 64) % 64);
        EXPECT_EQ(sam.decode(base, disp), expect) << base << "+" << disp;
    }
}

TEST(Sam, DecodeHandlesCarryOutOfOffsetField)
{
    SamDecoder sam(64, 64);
    // base offset 63 + disp offset 1 -> carry into the index field.
    EXPECT_EQ(sam.decode(63, 1), 1u);
    EXPECT_EQ(sam.decode(0x3f, 0x1), 1u);
    EXPECT_EQ(sam.decode(0xfff, 0x1), (0x1000u / 64) % 64);
}

TEST(Sam, ExactlyOneRowMatches)
{
    SamDecoder sam(32, 64);
    Rng rng(72);
    for (int i = 0; i < 5000; ++i) {
        const Addr a = rng.next() & 0xfffff;
        const Addr b = rng.next() & 0xffff;
        unsigned matches = 0;
        for (unsigned row = 0; row < 32; ++row)
            matches += sam.rowMatches(a, b, row);
        EXPECT_EQ(matches, 1u);
    }
}

TEST(Sam, VariousGeometries)
{
    Rng rng(73);
    for (unsigned sets : {16u, 64u, 256u}) {
        for (unsigned line : {32u, 64u, 128u}) {
            SamDecoder sam(sets, line);
            for (int i = 0; i < 2000; ++i) {
                const Addr base = rng.next() & 0xffffff;
                const Addr disp = rng.next() & 0x7fff;
                const unsigned expect = static_cast<unsigned>(
                    ((base + disp) / line) % sets);
                ASSERT_EQ(sam.decode(base, disp), expect)
                    << sets << "x" << line;
            }
        }
    }
}

TEST(Sam, RbVariantMatchesConversionFreePath)
{
    // The paper's modified SAM: redundant binary base plus TC
    // displacement, never converting the base.
    SamDecoder sam(64, 64);
    Rng rng(74);
    for (int i = 0; i < 30000; ++i) {
        // An RB base with add history (messy representation).
        const Word v1 = rng.next() & 0xffffff;
        const Word v2 = rng.next() & 0xffff;
        const RbNum base = rbAdd(RbNum::fromTc(v1),
                                 RbNum::fromTc(v2)).sum;
        const SWord disp = static_cast<SWord>(rng.range(-4096, 4095));
        const Addr ea = base.toTc() + static_cast<Addr>(disp);
        const unsigned expect =
            static_cast<unsigned>((ea / 64) % 64);
        ASSERT_EQ(sam.decodeRb(base, disp), expect)
            << v1 << "+" << v2 << " disp " << disp;
    }
}

TEST(Sam, RbVariantNegativeBaseDigits)
{
    SamDecoder sam(64, 64);
    // A base whose representation has many negative digits: subtraction
    // results.
    const RbNum base = rbSub(RbNum::fromTc(0x100000),
                             RbNum::fromTc(0x0fffc0)).sum; // = 0x40
    EXPECT_EQ(base.toTc(), 0x40u);
    EXPECT_EQ(sam.decodeRb(base, 0), 1u);
    EXPECT_EQ(sam.decodeRb(base, 64), 2u);
    EXPECT_EQ(sam.decodeRb(base, -64), 0u);
}

} // namespace
} // namespace rbsim
