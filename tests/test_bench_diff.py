#!/usr/bin/env python3
"""Regression tests for scripts/bench_diff.py.

Exercised through the CLI (subprocess), matching how CI calls it. The
cases that matter historically: a zero-IPC cell (deadlock-aborted run)
used to either raise ZeroDivisionError from hmean() or be silently
"skipped" with exit 0; both must now be a reported exit-2 failure
naming the offending cell.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      os.pardir, "scripts", "bench_diff.py")


def dump(cells, bench="fig12", scheduler="wakeup", sim_khz=100.0):
    return {
        "schema": "rbsim-bench-1",
        "bench": bench,
        "scale": 1,
        "scheduler": scheduler,
        "machines": sorted({m for m, _, _ in cells}),
        "cells": [{"machine": m, "workload": w, "ipc": ipc,
                   "host_ms": 1.0, "sim_khz": sim_khz}
                  for m, w, ipc in cells],
        "summary": {},
    }


class BenchDiffTest(unittest.TestCase):
    def run_diff(self, old, new, *extra):
        with tempfile.TemporaryDirectory() as d:
            paths = []
            for name, doc in (("old.json", old), ("new.json", new)):
                p = os.path.join(d, name)
                with open(p, "w") as f:
                    json.dump(doc, f)
                paths.append(p)
            return subprocess.run(
                [sys.executable, SCRIPT, *extra, *paths],
                capture_output=True, text=True)

    def test_clean_pass(self):
        doc = dump([("Baseline", "espresso", 1.5),
                    ("RB-full", "espresso", 1.8)])
        r = self.run_diff(doc, doc)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("no machine regressed", r.stdout)

    def test_regression_detected(self):
        old = dump([("Baseline", "espresso", 1.5)])
        new = dump([("Baseline", "espresso", 1.2)])
        r = self.run_diff(old, new)
        self.assertEqual(r.returncode, 1, r.stderr)
        self.assertIn("REGRESSION", r.stdout)

    def test_zero_ipc_cell_fails_with_diagnostic(self):
        """A deadlocked cell (IPC 0.0) must exit 2 with the cell named —
        not a ZeroDivisionError traceback, not a silent pass."""
        old = dump([("Baseline", "espresso", 1.5),
                    ("Baseline", "li", 1.4)])
        new = dump([("Baseline", "espresso", 0.0),
                    ("Baseline", "li", 1.4)])
        r = self.run_diff(old, new)
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertIn("non-positive IPC", r.stderr)
        self.assertIn("espresso", r.stderr)
        self.assertIn("Baseline", r.stderr)
        self.assertIn("new.json", r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_zero_ipc_in_old_dump_also_fails(self):
        old = dump([("RB-full", "compress", 0.0)])
        new = dump([("RB-full", "compress", 1.0)])
        r = self.run_diff(old, new)
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertIn("old.json", r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_negative_ipc_cell_fails(self):
        old = dump([("Ideal", "gcc", 2.0)])
        new = dump([("Ideal", "gcc", -1.0)])
        r = self.run_diff(old, new)
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_empty_machine_list_is_not_a_traceback(self):
        """Dumps with no cells at all: nothing comparable, exit 0 with a
        message (and in no case an unguarded max()/hmean() blowup)."""
        r = self.run_diff(dump([]), dump([]))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("nothing to compare", r.stdout)
        self.assertNotIn("Traceback", r.stderr)

    def test_disjoint_dumps_nothing_to_compare(self):
        old = dump([("Baseline", "espresso", 1.5)])
        new = dump([("RB-full", "li", 1.4)])
        r = self.run_diff(old, new)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("nothing to compare", r.stdout)

    def test_bad_schema_rejected(self):
        old = dump([("Baseline", "espresso", 1.5)])
        bad = dict(old, schema="rbsim-bench-0")
        r = self.run_diff(old, bad)
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("unsupported schema", r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_threshold_respected(self):
        old = dump([("Baseline", "espresso", 1.00)])
        new = dump([("Baseline", "espresso", 0.98)])
        r = self.run_diff(old, new, "--threshold", "5")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_speed_not_gating_by_default(self):
        """A big slowdown passes when --speed-gate is absent."""
        old = dump([("Baseline", "espresso", 1.5)], sim_khz=1000.0)
        new = dump([("Baseline", "espresso", 1.5)], sim_khz=10.0)
        r = self.run_diff(old, new)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("non-gating", r.stdout)

    def test_speed_gate_fails_on_slowdown(self):
        old = dump([("Baseline", "espresso", 1.5)], sim_khz=1000.0)
        new = dump([("Baseline", "espresso", 1.5)], sim_khz=400.0)
        r = self.run_diff(old, new, "--speed-gate", "50")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("TOO SLOW", r.stdout)
        self.assertIn("simulate too slowly", r.stdout)

    def test_speed_gate_passes_within_tolerance(self):
        old = dump([("Baseline", "espresso", 1.5)], sim_khz=1000.0)
        new = dump([("Baseline", "espresso", 1.5)], sim_khz=700.0)
        r = self.run_diff(old, new, "--speed-gate", "50")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("speed gate 50% passed", r.stdout)

    def test_speed_gate_improvement_passes(self):
        old = dump([("Baseline", "espresso", 1.5)], sim_khz=100.0)
        new = dump([("Baseline", "espresso", 1.5)], sim_khz=400.0)
        r = self.run_diff(old, new, "--speed-gate", "25")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_speed_gate_without_speed_data_refuses(self):
        """Gating against dumps without sim_khz must fail loudly, not
        skip to a green exit."""
        old = dump([("Baseline", "espresso", 1.5)], sim_khz=0.0)
        new = dump([("Baseline", "espresso", 1.5)], sim_khz=0.0)
        r = self.run_diff(old, new, "--speed-gate", "50")
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("no common cells carry sim_khz", r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def ci_dump(self, cells):
        """cells: (machine, workload, ipc, ci95-or-None)."""
        doc = dump([(m, w, ipc) for m, w, ipc, _ in cells])
        for jc, (_, _, _, ci) in zip(doc["cells"], cells):
            if ci is not None:
                jc["ci95"] = ci
        return doc

    def test_ci_cells_pass_within_combined_interval(self):
        """A drop inside the combined CI half-widths is statistical
        noise, not a regression — even far past --threshold."""
        old = self.ci_dump([("RB-full", "compress", 1.50, 0.10)])
        new = self.ci_dump([("RB-full", "compress", 1.35, 0.08)])
        r = self.run_diff(old, new, "--threshold", "1")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("CI-gated", r.stdout)

    def test_ci_cells_fail_beyond_combined_interval(self):
        old = self.ci_dump([("RB-full", "compress", 1.50, 0.02)])
        new = self.ci_dump([("RB-full", "compress", 1.35, 0.03)])
        r = self.run_diff(old, new)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("beyond combined CI", r.stdout)

    def test_ci_on_one_side_gates_on_that_ci(self):
        """Sampled-vs-full comparison: the full dump has no ci95, so the
        sampled run's own CI is the whole allowance — the acceptance
        check of docs/PERFORMANCE.md."""
        full = self.ci_dump([("RB-full", "compress", 1.50, None)])
        sampled = self.ci_dump([("RB-full", "compress", 1.45, 0.06)])
        r = self.run_diff(full, sampled)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        sampled_far = self.ci_dump([("RB-full", "compress", 1.40, 0.06)])
        r = self.run_diff(full, sampled_far)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)

    def test_ci_improvement_never_fails(self):
        old = self.ci_dump([("RB-full", "compress", 1.30, 0.01)])
        new = self.ci_dump([("RB-full", "compress", 1.60, 0.01)])
        r = self.run_diff(old, new)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_ci_and_exact_cells_mix(self):
        """Exact cells keep the hmean threshold gate while CI cells are
        gated per cell; an exact regression still fails the run."""
        old = self.ci_dump([("Baseline", "espresso", 1.50, None),
                            ("Baseline", "compress", 1.40, 0.10)])
        new = self.ci_dump([("Baseline", "espresso", 1.20, None),
                            ("Baseline", "compress", 1.35, 0.10)])
        r = self.run_diff(old, new)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("REGRESSION", r.stdout)

    def test_zero_ipc_in_ci_cell_still_exit_2(self):
        old = self.ci_dump([("Baseline", "compress", 1.40, 0.10)])
        new = self.ci_dump([("Baseline", "compress", 0.0, 0.0)])
        r = self.run_diff(old, new)
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_ipc_regression_wins_over_speed_gate_pass(self):
        old = dump([("Baseline", "espresso", 1.5)], sim_khz=100.0)
        new = dump([("Baseline", "espresso", 1.0)], sim_khz=100.0)
        r = self.run_diff(old, new, "--speed-gate", "50")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("REGRESSION", r.stdout)


if __name__ == "__main__":
    unittest.main()
