/**
 * @file
 * Statistics toolkit: means, StatSet, Histogram, the self-registering
 * registry, and StatSnapshot's JSON round-trip.
 */

#include <gtest/gtest.h>

#include "common/json.hh"
#include "common/stats.hh"

namespace
{

using namespace rbsim;

// ---------------------------------------------------------------- means

TEST(Means, EmptyInputsAreZero)
{
    EXPECT_EQ(arithmeticMean({}), 0.0);
    EXPECT_EQ(harmonicMean({}), 0.0);
    EXPECT_EQ(geometricMean({}), 0.0);
}

TEST(Means, SingletonIsIdentity)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({2.5}), 2.5);
    EXPECT_DOUBLE_EQ(harmonicMean({2.5}), 2.5);
    EXPECT_DOUBLE_EQ(geometricMean({2.5}), 2.5);
}

TEST(Means, DegenerateEqualSamples)
{
    const std::vector<double> xs(7, 3.0);
    EXPECT_DOUBLE_EQ(arithmeticMean(xs), 3.0);
    EXPECT_DOUBLE_EQ(harmonicMean(xs), 3.0);
    EXPECT_DOUBLE_EQ(geometricMean(xs), 3.0);
}

TEST(Means, KnownValuesAndOrdering)
{
    const std::vector<double> xs{1.0, 4.0};
    EXPECT_DOUBLE_EQ(arithmeticMean(xs), 2.5);
    EXPECT_DOUBLE_EQ(harmonicMean(xs), 1.6);
    EXPECT_DOUBLE_EQ(geometricMean(xs), 2.0);
    // HM <= GM <= AM for non-equal positive samples.
    EXPECT_LT(harmonicMean(xs), geometricMean(xs));
    EXPECT_LT(geometricMean(xs), arithmeticMean(xs));
}

// -------------------------------------------------------------- StatSet

TEST(StatSet, AddGetRatio)
{
    StatSet s;
    EXPECT_EQ(s.get("absent"), 0u);
    s.add("hits");
    s.add("hits", 4);
    s.add("misses", 5);
    EXPECT_EQ(s.get("hits"), 5u);
    EXPECT_DOUBLE_EQ(s.ratio("hits", "misses"), 1.0);
    EXPECT_DOUBLE_EQ(s.ratio("hits", "absent"), 0.0);
}

TEST(StatSet, FormatIsSortedAndDeterministic)
{
    StatSet s;
    s.add("zeta", 2);
    s.add("alpha", 1);
    EXPECT_EQ(s.format(), "alpha = 1\nzeta = 2\n");
}

// ------------------------------------------------------------ Histogram

TEST(Histogram, RecordsAndClampsToLastBucket)
{
    Histogram h(4);
    h.record(0);
    h.record(1);
    h.record(3);
    h.record(99); // clamps into bucket 3
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_EQ(h.raw(), (std::vector<std::uint64_t>{1, 1, 0, 2}));
    EXPECT_DOUBLE_EQ(h.fraction(3), 0.5);
    EXPECT_DOUBLE_EQ(h.fraction(7), 0.0); // out of range
}

TEST(Histogram, EmptyFractionIsZero)
{
    Histogram h(4);
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

// ------------------------------------------------------------- registry

TEST(StatRegistry, SnapshotSeesCurrentValues)
{
    std::uint64_t retired = 0;
    std::uint64_t cycles = 0;
    std::uint64_t table[3] = {0, 0, 0};
    Histogram hist(4);

    StatRegistry reg;
    StatGroup core = statGroup(reg, "core");
    core.counter("retired", &retired);
    core.counter("cycles", &cycles);
    core.vector("table", table, 3);
    core.histogram("waits", &hist);
    core.formula("ipc", [&] {
        return cycles ? double(retired) / double(cycles) : 0.0;
    });

    // Values read at snapshot time, not registration time.
    retired = 30;
    cycles = 10;
    table[1] = 7;
    hist.record(2);

    const StatSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("core.retired"), 30u);
    EXPECT_EQ(snap.counter("core.absent"), 0u);
    EXPECT_DOUBLE_EQ(snap.value("core.ipc"), 3.0);
    EXPECT_DOUBLE_EQ(snap.value("core.cycles"), 10.0); // counter fallback
    EXPECT_EQ(snap.vec("core.table"),
              (std::vector<std::uint64_t>{0, 7, 0}));
    EXPECT_EQ(snap.vec("core.waits"),
              (std::vector<std::uint64_t>{0, 0, 1, 0}));
    EXPECT_DOUBLE_EQ(snap.ratio("core.retired", "core.cycles"), 3.0);
}

TEST(StatRegistry, ChildGroupsNest)
{
    std::uint64_t v = 9;
    StatRegistry reg;
    statGroup(reg, "core").group("bypass").counter("uses", &v);
    EXPECT_EQ(reg.snapshot().counter("core.bypass.uses"), 9u);
}

TEST(StatRegistry, DuplicateNamesThrow)
{
    std::uint64_t v = 0;
    StatRegistry reg;
    reg.addCounter("x", &v);
    EXPECT_THROW(reg.addCounter("x", &v), std::logic_error);
    EXPECT_THROW(reg.addFormula("x", [] { return 0.0; }),
                 std::logic_error);
}

// ---------------------------------------------------------- JSON travel

TEST(StatSnapshot, JsonRoundTripIsExact)
{
    std::uint64_t big = 0xffff'ffff'ffff'fff0ull; // needs exact u64
    Histogram hist(3);
    hist.record(1);

    StatRegistry reg;
    StatGroup g = statGroup(reg, "core");
    g.counter("big", &big);
    g.histogram("h", &hist);
    g.formula("f", [] { return 0.125; });

    const StatSnapshot snap = reg.snapshot();
    const StatSnapshot back = StatSnapshot::fromJson(snap.toJson());
    EXPECT_EQ(back, snap);
    EXPECT_EQ(back.counter("core.big"), big);
    EXPECT_DOUBLE_EQ(back.value("core.f"), 0.125);
}

TEST(StatSnapshot, FromJsonRejectsGarbage)
{
    EXPECT_THROW(StatSnapshot::fromJson("{\"counters\": [}"), JsonError);
    EXPECT_THROW(StatSnapshot::fromJson(""), JsonError);
}

TEST(StatSnapshot, EqualityDetectsDivergence)
{
    StatSnapshot a, b;
    a.counters["core.retired"] = 5;
    b.counters["core.retired"] = 5;
    EXPECT_EQ(a, b);
    b.counters["core.retired"] = 6;
    EXPECT_NE(a, b);
}

} // namespace
