/**
 * @file
 * Unit tests for the fetch engine: width/block limits, prediction at
 * fetch, HALT/JMP parking, redirect, and statistics utilities.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "common/strutil.hh"
#include "frontend/fetch.hh"
#include "isa/assembler.hh"

namespace rbsim
{
namespace
{

struct FetchRig
{
    explicit FetchRig(const Program &p)
        : prog(p), cfg(MachineConfig::make(MachineKind::Ideal, 8)),
          mem(cfg), fetch(cfg, prog, mem)
    {}

    /** Advance until the engine delivers something (icache warmup). */
    std::vector<FetchedInst>
    fetchWarm(Cycle &now)
    {
        for (int tries = 0; tries < 300; ++tries) {
            std::vector<FetchedInst> got;
            fetch.fetchCycle(now, got);
            ++now;
            if (!got.empty())
                return got;
            if (fetch.parked())
                return {};
        }
        return {};
    }

    Program prog;
    MachineConfig cfg;
    MemHierarchy mem;
    FetchEngine fetch;
};

TEST(Fetch, DeliversUpToEightStraightLine)
{
    FetchRig rig(assemble(R"(
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        halt
    )"));
    Cycle now = 0;
    const auto got = rig.fetchWarm(now);
    EXPECT_EQ(got.size(), 8u);
    EXPECT_EQ(got[0].pcIndex, 0u);
    EXPECT_EQ(got[7].pcIndex, 7u);
}

TEST(Fetch, StopsAfterTwoBasicBlocks)
{
    // Two taken branches in quick succession: the second block ends the
    // cycle's fetch even though width remains.
    FetchRig rig(assemble(R"(
        a:  br b
            nop
        b:  br c
            nop
        c:  nop
            halt
    )"));
    Cycle now = 0;
    const auto got = rig.fetchWarm(now);
    // br (block 1 ends) + br (block 2 ends) -> stop.
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].pcIndex, 0u);
    EXPECT_EQ(got[1].pcIndex, 2u);
}

TEST(Fetch, FollowsPredictedTakenBranchSameCycle)
{
    FetchRig rig(assemble(R"(
            br target
            nop
            nop
        target:
            nop
            halt
    )"));
    Cycle now = 0;
    const auto got = rig.fetchWarm(now);
    ASSERT_GE(got.size(), 2u);
    EXPECT_EQ(got[0].pcIndex, 0u);
    EXPECT_TRUE(got[0].predTaken);
    EXPECT_EQ(got[1].pcIndex, 3u); // the target, same cycle
}

TEST(Fetch, ParksOnHalt)
{
    FetchRig rig(assemble("nop\nhalt\nnop\nnop"));
    Cycle now = 0;
    const auto got = rig.fetchWarm(now);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[1].inst.op, Opcode::HALT);
    EXPECT_TRUE(rig.fetch.parked());
    std::vector<FetchedInst> more;
    EXPECT_EQ(rig.fetch.fetchCycle(now, more), 0u);
    EXPECT_TRUE(more.empty());
}

TEST(Fetch, RedirectReawakensParkedEngine)
{
    FetchRig rig(assemble("halt\nnop\nhalt"));
    Cycle now = 0;
    rig.fetchWarm(now);
    ASSERT_TRUE(rig.fetch.parked());
    rig.fetch.redirect(1, now);
    now += 1;
    const auto got = rig.fetchWarm(now);
    ASSERT_GE(got.size(), 1u);
    EXPECT_EQ(got[0].pcIndex, 1u);
}

TEST(Fetch, UnpredictableJmpStalls)
{
    // A JMP through a register with cold RAS/BTB parks fetch until the
    // core resolves it.
    FetchRig rig(assemble(R"(
            ldiq r4, 0x10008
            jmp r9, r4
            nop
            halt
    )"));
    Cycle now = 0;
    const auto got = rig.fetchWarm(now);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_TRUE(got[1].stalledJmp);
    EXPECT_TRUE(rig.fetch.parked());
}

TEST(Fetch, CondBranchSnapshotsPredictorState)
{
    FetchRig rig(assemble(R"(
            ldiq r1, 5
        top:
            subq r1, #1, r1
            bne r1, top
            halt
    )"));
    Cycle now = 0;
    std::vector<FetchedInst> all;
    for (int i = 0; i < 400 && all.size() < 6; ++i) {
        rig.fetch.fetchCycle(now, all);
        ++now;
    }
    bool saw_branch = false;
    for (const auto &f : all) {
        if (isCondBranch(f.inst.op)) {
            saw_branch = true;
            // Snapshot captured (history may legitimately be 0 early; at
            // least the structure is present and indices latched).
            EXPECT_EQ(f.inst.op, Opcode::BNE);
        }
    }
    EXPECT_TRUE(saw_branch);
}

TEST(Stats, Means)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_NEAR(harmonicMean({1.0, 2.0, 4.0}), 3.0 / 1.75, 1e-12);
    EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_EQ(arithmeticMean({}), 0.0);
}

TEST(Stats, StatSetAndHistogram)
{
    StatSet s;
    s.add("a");
    s.add("a", 4);
    s.add("b", 10);
    EXPECT_EQ(s.get("a"), 5u);
    EXPECT_EQ(s.get("missing"), 0u);
    EXPECT_DOUBLE_EQ(s.ratio("a", "b"), 0.5);
    EXPECT_NE(s.format().find("a = 5"), std::string::npos);

    Histogram h(4);
    h.record(0);
    h.record(1);
    h.record(1);
    h.record(99); // clamps into the last bucket
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
    EXPECT_EQ(h.raw()[3], 1u);
}

TEST(Strutil, Helpers)
{
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(toLower("AbC"), "abc");
    EXPECT_TRUE(startsWith("hello", "he"));
    EXPECT_FALSE(startsWith("h", "he"));
    EXPECT_EQ(splitTokens("a, b,,c", ", "),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(fmtDouble(1.2345, 2), "1.23");
}

} // namespace
} // namespace rbsim
