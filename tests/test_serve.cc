/**
 * @file
 * The serving layer (docs/SERVING.md):
 *  - Program::hash() content identity (assemble/disassemble round-trip,
 *    single-instruction sensitivity);
 *  - the reset-in-place determinism contract — a warm, reused Simulator
 *    produces StatSnapshots bit-identical to a fresh one across the
 *    Figure 12 grid under both the wakeup and the polled scheduler;
 *  - SimService result caching, in-batch coalescing, and the
 *    zero-steady-state-allocation serving window (this binary links
 *    rbsim-allochook);
 *  - protocol edge cases: malformed JSON, unknown machine / workload /
 *    scheduler, malformed shapes, oversized programs, duplicate ids,
 *    duplicate in-flight jobs — all structured per-job error records,
 *    with the server still serving afterwards.
 */

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "common/alloccount.hh"
#include "isa/assembler.hh"
#include "isa/builder.hh"
#include "isa/disasm.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "workloads/workload.hh"

namespace rbsim
{
namespace
{

Program
hashSubject(std::int64_t tweak)
{
    CodeBuilder cb("hash-subject");
    cb.ldiq(R(1), 0x1000 + tweak);
    cb.ldiq(R(2), 3);
    cb.op3(Opcode::ADDQ, R(1), R(2), R(3));
    cb.opi(Opcode::SUBQ, R(3), 1, R(4));
    cb.halt();
    return cb.finish();
}

// ------------------------------------------------------- Program::hash

TEST(ProgramHash, DeterministicAndNameBlind)
{
    const Program a = hashSubject(0);
    Program b = hashSubject(0);
    EXPECT_EQ(a.hash(), b.hash());
    b.name = "different-name";
    EXPECT_EQ(a.hash(), b.hash()) << "name must not affect content hash";
}

TEST(ProgramHash, AssembleRoundTripPreservesHash)
{
    // The same identity the fuzz corpus relies on: disassembling and
    // re-assembling a program preserves its content.
    const Program orig = hashSubject(7);
    const Program round = assemble(disassembleProgram(orig));
    EXPECT_EQ(orig.hash(), round.hash());

    // Also through a registered workload generator (data segments too).
    WorkloadParams wp;
    const Program wl = findWorkload("compress").build(wp);
    const Program wlRound = assemble(disassembleProgram(wl));
    EXPECT_EQ(wl.hash(), wlRound.hash());
}

TEST(ProgramHash, SingleInstructionMutationChangesHash)
{
    const Program a = hashSubject(0);
    const Program b = hashSubject(1); // one literal differs
    EXPECT_NE(a.hash(), b.hash());

    CodeBuilder cb("hash-subject");
    cb.ldiq(R(1), 0x1000);
    cb.ldiq(R(2), 3);
    cb.op3(Opcode::SUBQ, R(1), R(2), R(3)); // opcode differs
    cb.opi(Opcode::SUBQ, R(3), 1, R(4));
    cb.halt();
    EXPECT_NE(a.hash(), cb.finish().hash());
}

// ----------------------------------------------- reset-in-place parity

/** The Figure 12 machines (4-wide), with the scheduler knob applied. */
std::vector<MachineConfig>
bench_grid(bool polled)
{
    std::vector<MachineConfig> grid;
    for (MachineKind kind :
         {MachineKind::Baseline, MachineKind::RbLimited,
          MachineKind::RbFull, MachineKind::Ideal}) {
        MachineConfig cfg = MachineConfig::make(kind, 4);
        cfg.polledScheduler = polled;
        grid.push_back(cfg);
    }
    return grid;
}

/**
 * One warm Simulator per configuration runs the whole suite in
 * sequence (so every run after the first exercises reset-in-place with
 * a *different* program than the last), and every result must be
 * bit-identical to a freshly constructed Simulator's.
 */
void
expectResetParity(bool polled)
{
    const std::vector<WorkloadInfo> suite = suiteWorkloads("spec95");
    for (MachineConfig cfg : bench_grid(polled)) {
        Simulator reused(cfg);
        for (const WorkloadInfo &wl : suite) {
            WorkloadParams wp;
            const Program prog = wl.build(wp);
            const SimResult warm = reused.run(prog);
            const SimResult fresh = simulate(cfg, prog);
            EXPECT_EQ(warm.stats, fresh.stats)
                << cfg.label << "/" << wl.name
                << (polled ? " (polled)" : " (wakeup)");
            EXPECT_EQ(warm.halted, fresh.halted);
        }
        EXPECT_EQ(reused.runsCompleted(), suite.size());
    }
}

TEST(SimulatorReset, Fig12GridWakeupParity) { expectResetParity(false); }

TEST(SimulatorReset, Fig12GridPolledParity) { expectResetParity(true); }

// ------------------------------------------------------------ service

serve::JobSpec
compressSpec(const char *machine_alias = "rbfull")
{
    serve::JobRequest req;
    req.id = "x";
    req.workload = "compress";
    req.machine = machine_alias;
    req.width = 4;
    serve::JobSpec spec;
    spec.cfg = serve::requestConfig(req);
    WorkloadParams wp;
    spec.prog = findWorkload("compress").build(wp);
    return spec;
}

TEST(SimService, CachesAndCoalesces)
{
    serve::SimService service(
        serve::SimService::Options{/*workers=*/2, /*cacheCapacity=*/16});

    // An in-batch duplicate coalesces onto one execution.
    std::vector<serve::JobSpec> batch;
    batch.push_back(compressSpec());
    batch.push_back(compressSpec("base"));
    batch.push_back(compressSpec());
    const auto first = service.runBatch(std::move(batch));
    ASSERT_EQ(first.size(), 3u);
    for (const auto &o : first)
        ASSERT_TRUE(o.ok) << o.error;
    EXPECT_FALSE(first[0].cacheHit);
    EXPECT_FALSE(first[1].cacheHit);
    EXPECT_TRUE(first[2].cacheHit);
    EXPECT_EQ(first[0].result.stats, first[2].result.stats);
    EXPECT_EQ(service.counters().jobsExecuted, 2u);

    // A later identical batch is served from the LRU cache entirely.
    std::vector<serve::JobSpec> again;
    again.push_back(compressSpec());
    again.push_back(compressSpec("base"));
    const auto second = service.runBatch(std::move(again));
    ASSERT_TRUE(second[0].ok && second[1].ok);
    EXPECT_TRUE(second[0].cacheHit);
    EXPECT_TRUE(second[1].cacheHit);
    EXPECT_EQ(second[0].result.stats, first[0].result.stats);
    EXPECT_EQ(service.counters().jobsExecuted, 2u);
    EXPECT_GE(service.counters().cacheHits, 2u);
}

TEST(SimService, ServingWindowIsAllocationFree)
{
    ASSERT_TRUE(alloccount::hooked())
        << "test_serve must link rbsim-allochook";
    alloccount::enable(true);

    serve::SimService service(
        serve::SimService::Options{/*workers=*/1, /*cacheCapacity=*/0});

    auto runOnce = [&] {
        serve::JobSpec spec = compressSpec();
        spec.bypassCache = true; // must execute, not hit a cache
        std::vector<serve::JobSpec> batch;
        batch.push_back(std::move(spec));
        auto out = service.runBatch(std::move(batch));
        EXPECT_TRUE(out[0].ok) << out[0].error;
        return out[0];
    };

    // Warm-up: simulator construction plus first-run buffer growth.
    runOnce();
    runOnce();
    // Steady state: reset + run + snapshot reuse every buffer.
    for (int i = 0; i < 3; ++i) {
        const serve::JobOutcome o = runOnce();
        ASSERT_TRUE(o.allocsCounted);
        EXPECT_EQ(o.workerAllocs, 0u)
            << "warm serving window allocated on iteration " << i;
    }
    alloccount::enable(false);
}

// ----------------------------------------------------- protocol basics

TEST(ServeProtocol, ConfigJsonRoundTrips)
{
    for (unsigned width : {4u, 8u}) {
        for (MachineKind kind :
             {MachineKind::Baseline, MachineKind::RbLimited,
              MachineKind::RbFull, MachineKind::Ideal}) {
            const MachineConfig cfg = MachineConfig::make(kind, width);
            const MachineConfig round =
                serve::configFromJson(serve::configToJson(cfg));
            EXPECT_EQ(serve::configKey(cfg), serve::configKey(round));
        }
    }
    // An ablation knob survives the wire.
    MachineConfig ab = MachineConfig::makeIdealLimited(4, 0b001);
    ab.label = "Ideal-L1";
    const MachineConfig round =
        serve::configFromJson(serve::configToJson(ab));
    EXPECT_EQ(serve::configKey(ab), serve::configKey(round));
    EXPECT_EQ(round.bypassLevelMask, 0b001);
}

TEST(ServeProtocol, RequestParsing)
{
    const serve::JobRequest req = serve::parseRequest(std::string(
        R"({"id":"j1","workload":"gcc","scale":2,"machine":"rblim",)"
        R"("width":8,"scheduler":"polled","max_cycles":1000,)"
        R"("cosim":false,"stats":["core.ipc"]})"));
    EXPECT_EQ(req.id, "j1");
    EXPECT_EQ(req.workload, "gcc");
    EXPECT_EQ(req.scale, 2u);
    EXPECT_EQ(req.maxCycles, 1000u);
    EXPECT_FALSE(req.cosim);
    ASSERT_EQ(req.statSelect.size(), 1u);

    const MachineConfig cfg = serve::requestConfig(req);
    EXPECT_EQ(cfg.kind, MachineKind::RbLimited);
    EXPECT_EQ(cfg.width, 8u);
    EXPECT_TRUE(cfg.polledScheduler);
    EXPECT_FALSE(cfg.wakeupOracle);
}

// ------------------------------------------------- server edge cases

/** A Server wired to an in-memory response sink. */
struct TestServer
{
    explicit TestServer(serve::Server::Options opts = makeOpts())
        : server(opts, [this](const std::string &line) {
              std::lock_guard<std::mutex> lock(mu);
              lines.push_back(line);
          })
    {}

    static serve::Server::Options
    makeOpts()
    {
        serve::Server::Options o;
        o.service.workers = 1;
        return o;
    }

    /** Feed a line and wait for every accepted job to respond. */
    std::vector<Json>
    roundTrip(const std::string &line)
    {
        server.handleLine(line);
        server.drain();
        std::lock_guard<std::mutex> lock(mu);
        std::vector<Json> parsed;
        for (const std::string &l : lines)
            parsed.push_back(Json::parse(l));
        lines.clear();
        return parsed;
    }

    std::mutex mu;
    std::vector<std::string> lines;
    serve::Server server;
};

void
expectError(const std::vector<Json> &resp, const char *code)
{
    ASSERT_EQ(resp.size(), 1u);
    const Json *ok = resp[0].find("ok");
    ASSERT_NE(ok, nullptr);
    EXPECT_FALSE(ok->asBool());
    const Json *c = resp[0].find("code");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->asString(), code);
}

TEST(ServeServer, StructuredErrorsAndSurvival)
{
    TestServer ts;

    expectError(ts.roundTrip("this is not json"), "parse");
    expectError(ts.roundTrip(R"({"id":"e1","workload":"compress",)"
                             R"("machine":"pentium"})"),
                "unknown-machine");
    expectError(ts.roundTrip(R"({"id":"e2","workload":"doom",)"
                             R"("machine":"base"})"),
                "unknown-workload");
    expectError(ts.roundTrip(R"({"id":"e3","workload":"compress",)"
                             R"("machine":"base","scheduler":"psychic"})"),
                "unknown-scheduler");
    // Shape errors: missing id, program+workload both, neither machine
    // nor config, unknown key.
    expectError(ts.roundTrip(R"({"workload":"compress","machine":"base"})"),
                "bad-request");
    expectError(ts.roundTrip(R"({"id":"e4","workload":"compress",)"
                             R"("program":"halt","machine":"base"})"),
                "bad-request");
    expectError(ts.roundTrip(R"({"id":"e5","workload":"compress"})"),
                "bad-request");
    expectError(ts.roundTrip(R"({"id":"e6","workload":"compress",)"
                             R"("machine":"base","frobnicate":1})"),
                "bad-request");
    expectError(ts.roundTrip(R"({"id":"e7","program":"not assembly",)"
                             R"("machine":"base"})"),
                "bad-program");

    // After all of that, the server still serves.
    const auto okResp = ts.roundTrip(
        R"({"id":"ok1","workload":"compress","machine":"base","width":4})");
    ASSERT_EQ(okResp.size(), 1u);
    EXPECT_TRUE(okResp[0].find("ok")->asBool());
    EXPECT_EQ(okResp[0].find("machine")->asString(), "Baseline");
    EXPECT_GT(okResp[0].find("ipc")->asDouble(), 0.0);
    EXPECT_EQ(ts.server.jobsOk(), 1u);
}

TEST(ServeServer, OversizedProgramsRejected)
{
    serve::Server::Options opts = TestServer::makeOpts();
    opts.maxProgramInsts = 3;
    opts.maxScale = 4;
    TestServer ts(opts);

    // The compress workload is far larger than 3 static instructions.
    expectError(ts.roundTrip(R"({"id":"o1","workload":"compress",)"
                             R"("machine":"base"})"),
                "oversized-program");
    expectError(ts.roundTrip(R"({"id":"o2","workload":"compress",)"
                             R"("machine":"base","scale":5})"),
                "oversized-program");
}

TEST(ServeServer, DuplicateIdAndDuplicateInFlight)
{
    TestServer ts;
    const std::string job =
        R"({"id":"d1","workload":"compress","machine":"ideal","width":4})";

    // Two identical jobs before the first completes: the second is
    // rejected as duplicate-in-flight (same payload), and its distinct
    // id is NOT burned by the rejection.
    ts.server.handleLine(job);
    const std::string job2 =
        R"({"id":"d2","workload":"compress","machine":"ideal","width":4})";
    ts.server.handleLine(job2);
    ts.server.drain();
    std::vector<Json> resp;
    {
        std::lock_guard<std::mutex> lock(ts.mu);
        for (const std::string &l : ts.lines)
            resp.push_back(Json::parse(l));
        ts.lines.clear();
    }
    ASSERT_EQ(resp.size(), 2u);
    // Response order is not guaranteed; find by id.
    const Json *first = nullptr, *second = nullptr;
    for (const Json &r : resp) {
        if (r.find("id")->asString() == "d1")
            first = &r;
        else if (r.find("id")->asString() == "d2")
            second = &r;
    }
    ASSERT_NE(first, nullptr);
    ASSERT_NE(second, nullptr);
    EXPECT_TRUE(first->find("ok")->asBool());
    EXPECT_FALSE(second->find("ok")->asBool());
    EXPECT_EQ(second->find("code")->asString(), "duplicate-in-flight");

    // Re-using a completed job's id is duplicate-id.
    expectError(ts.roundTrip(job), "duplicate-id");

    // The rejected d2 can resubmit now and gets a cache hit.
    const auto retry = ts.roundTrip(job2);
    ASSERT_EQ(retry.size(), 1u);
    EXPECT_TRUE(retry[0].find("ok")->asBool());
    EXPECT_TRUE(retry[0].find("cache_hit")->asBool());
}

} // namespace
} // namespace rbsim
