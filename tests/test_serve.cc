/**
 * @file
 * The serving layer (docs/SERVING.md):
 *  - Program::hash() content identity (assemble/disassemble round-trip,
 *    single-instruction sensitivity);
 *  - the reset-in-place determinism contract — a warm, reused Simulator
 *    produces StatSnapshots bit-identical to a fresh one across the
 *    Figure 12 grid under both the wakeup and the polled scheduler;
 *  - SimService result caching, in-batch coalescing, and the
 *    zero-steady-state-allocation serving window (this binary links
 *    rbsim-allochook);
 *  - protocol edge cases: malformed JSON, unknown machine / workload /
 *    scheduler, malformed shapes, oversized programs, duplicate ids,
 *    duplicate in-flight jobs — all structured per-job error records,
 *    with the server still serving afterwards.
 */

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "common/alloccount.hh"
#include "isa/assembler.hh"
#include "isa/builder.hh"
#include "isa/disasm.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "workloads/workload.hh"

namespace rbsim
{
namespace
{

Program
hashSubject(std::int64_t tweak)
{
    CodeBuilder cb("hash-subject");
    cb.ldiq(R(1), 0x1000 + tweak);
    cb.ldiq(R(2), 3);
    cb.op3(Opcode::ADDQ, R(1), R(2), R(3));
    cb.opi(Opcode::SUBQ, R(3), 1, R(4));
    cb.halt();
    return cb.finish();
}

// ------------------------------------------------------- Program::hash

TEST(ProgramHash, DeterministicAndNameBlind)
{
    const Program a = hashSubject(0);
    Program b = hashSubject(0);
    EXPECT_EQ(a.hash(), b.hash());
    b.name = "different-name";
    EXPECT_EQ(a.hash(), b.hash()) << "name must not affect content hash";
}

TEST(ProgramHash, AssembleRoundTripPreservesHash)
{
    // The same identity the fuzz corpus relies on: disassembling and
    // re-assembling a program preserves its content.
    const Program orig = hashSubject(7);
    const Program round = assemble(disassembleProgram(orig));
    EXPECT_EQ(orig.hash(), round.hash());

    // Also through a registered workload generator (data segments too).
    WorkloadParams wp;
    const Program wl = findWorkload("compress").build(wp);
    const Program wlRound = assemble(disassembleProgram(wl));
    EXPECT_EQ(wl.hash(), wlRound.hash());
}

TEST(ProgramHash, SingleInstructionMutationChangesHash)
{
    const Program a = hashSubject(0);
    const Program b = hashSubject(1); // one literal differs
    EXPECT_NE(a.hash(), b.hash());

    CodeBuilder cb("hash-subject");
    cb.ldiq(R(1), 0x1000);
    cb.ldiq(R(2), 3);
    cb.op3(Opcode::SUBQ, R(1), R(2), R(3)); // opcode differs
    cb.opi(Opcode::SUBQ, R(3), 1, R(4));
    cb.halt();
    EXPECT_NE(a.hash(), cb.finish().hash());
}

// ----------------------------------------------- reset-in-place parity

/** The Figure 12 machines (4-wide), with the scheduler knob applied. */
std::vector<MachineConfig>
bench_grid(bool polled)
{
    std::vector<MachineConfig> grid;
    for (MachineKind kind :
         {MachineKind::Baseline, MachineKind::RbLimited,
          MachineKind::RbFull, MachineKind::Ideal}) {
        MachineConfig cfg = MachineConfig::make(kind, 4);
        cfg.polledScheduler = polled;
        grid.push_back(cfg);
    }
    return grid;
}

/**
 * One warm Simulator per configuration runs the whole suite in
 * sequence (so every run after the first exercises reset-in-place with
 * a *different* program than the last), and every result must be
 * bit-identical to a freshly constructed Simulator's.
 */
void
expectResetParity(bool polled)
{
    const std::vector<WorkloadInfo> suite = suiteWorkloads("spec95");
    for (MachineConfig cfg : bench_grid(polled)) {
        Simulator reused(cfg);
        for (const WorkloadInfo &wl : suite) {
            WorkloadParams wp;
            const Program prog = wl.build(wp);
            const SimResult warm = reused.run(prog);
            const SimResult fresh = simulate(cfg, prog);
            EXPECT_EQ(warm.stats, fresh.stats)
                << cfg.label << "/" << wl.name
                << (polled ? " (polled)" : " (wakeup)");
            EXPECT_EQ(warm.halted, fresh.halted);
        }
        EXPECT_EQ(reused.runsCompleted(), suite.size());
    }
}

TEST(SimulatorReset, Fig12GridWakeupParity) { expectResetParity(false); }

TEST(SimulatorReset, Fig12GridPolledParity) { expectResetParity(true); }

// ------------------------------------------------------------ service

serve::JobSpec
compressSpec(const char *machine_alias = "rbfull")
{
    serve::JobRequest req;
    req.id = "x";
    req.workload = "compress";
    req.machine = machine_alias;
    req.width = 4;
    serve::JobSpec spec;
    spec.cfg = serve::requestConfig(req);
    WorkloadParams wp;
    spec.prog = findWorkload("compress").build(wp);
    return spec;
}

TEST(SimService, CachesAndCoalesces)
{
    serve::SimService service(
        serve::SimService::Options{/*workers=*/2, /*cacheCapacity=*/16});

    // An in-batch duplicate coalesces onto one execution.
    std::vector<serve::JobSpec> batch;
    batch.push_back(compressSpec());
    batch.push_back(compressSpec("base"));
    batch.push_back(compressSpec());
    const auto first = service.runBatch(std::move(batch));
    ASSERT_EQ(first.size(), 3u);
    for (const auto &o : first)
        ASSERT_TRUE(o.ok) << o.error;
    EXPECT_FALSE(first[0].cacheHit);
    EXPECT_FALSE(first[1].cacheHit);
    EXPECT_TRUE(first[2].cacheHit);
    EXPECT_EQ(first[0].result.stats, first[2].result.stats);
    EXPECT_EQ(service.counters().jobsExecuted, 2u);

    // A later identical batch is served from the LRU cache entirely.
    std::vector<serve::JobSpec> again;
    again.push_back(compressSpec());
    again.push_back(compressSpec("base"));
    const auto second = service.runBatch(std::move(again));
    ASSERT_TRUE(second[0].ok && second[1].ok);
    EXPECT_TRUE(second[0].cacheHit);
    EXPECT_TRUE(second[1].cacheHit);
    EXPECT_EQ(second[0].result.stats, first[0].result.stats);
    EXPECT_EQ(service.counters().jobsExecuted, 2u);
    EXPECT_GE(service.counters().cacheHits, 2u);
}

TEST(SimService, ServingWindowIsAllocationFree)
{
    ASSERT_TRUE(alloccount::hooked())
        << "test_serve must link rbsim-allochook";
    alloccount::enable(true);

    serve::SimService service(
        serve::SimService::Options{/*workers=*/1, /*cacheCapacity=*/0});

    auto runOnce = [&] {
        serve::JobSpec spec = compressSpec();
        spec.bypassCache = true; // must execute, not hit a cache
        std::vector<serve::JobSpec> batch;
        batch.push_back(std::move(spec));
        auto out = service.runBatch(std::move(batch));
        EXPECT_TRUE(out[0].ok) << out[0].error;
        return out[0];
    };

    // Warm-up: simulator construction plus first-run buffer growth.
    runOnce();
    runOnce();
    // Steady state: reset + run + snapshot reuse every buffer.
    for (int i = 0; i < 3; ++i) {
        const serve::JobOutcome o = runOnce();
        ASSERT_TRUE(o.allocsCounted);
        EXPECT_EQ(o.workerAllocs, 0u)
            << "warm serving window allocated on iteration " << i;
    }
    alloccount::enable(false);
}

// ------------------------------------------------ result-cache identity

TEST(SimOptionsKey, GuardAgainstUnkeyedFields)
{
    // If this fires you added a field to SimOptions: fold it into
    // resultKey() (or document why it cannot affect results, like
    // tracer/profiler) and update the expected size. The serve result
    // cache serves stale results for any field this guard misses.
    struct Expected
    {
        Cycle maxCycles;
        bool cosim;
        trace::Tracer *tracer;
        HostProfiler *profiler;
        std::uint64_t maxInsts;
        std::uint64_t warmupInsts;
        std::shared_ptr<const ArchCheckpoint> startFrom;
    };
    static_assert(sizeof(SimOptions) == sizeof(Expected),
                  "new SimOptions field: revisit resultKey()");
    SUCCEED();
}

TEST(SimOptionsKey, EveryResultAffectingFieldChangesTheKey)
{
    const SimOptions base;
    auto key = [](auto mutate) {
        SimOptions o;
        mutate(o);
        return o.resultKey();
    };
    const std::string baseKey = base.resultKey();
    EXPECT_NE(key([](SimOptions &o) { o.maxCycles = 7; }), baseKey);
    EXPECT_NE(key([](SimOptions &o) { o.cosim = false; }), baseKey);
    EXPECT_NE(key([](SimOptions &o) { o.maxInsts = 1000; }), baseKey);
    EXPECT_NE(key([](SimOptions &o) { o.warmupInsts = 100; }), baseKey);
    EXPECT_NE(key([](SimOptions &o) {
                  o.startFrom = std::make_shared<ArchCheckpoint>();
              }),
              baseKey);
    // Observers do NOT change the key (they never alter stats).
    EXPECT_EQ(key([](SimOptions &o) {
                  o.tracer = reinterpret_cast<trace::Tracer *>(0x1);
              }),
              baseKey);

    // Distinct checkpoints key distinctly; equal-content ones share.
    ArchCheckpoint a, b;
    a.pc = 10;
    b.pc = 20;
    SimOptions oa, ob, oa2;
    oa.startFrom = std::make_shared<ArchCheckpoint>(a);
    ob.startFrom = std::make_shared<ArchCheckpoint>(b);
    oa2.startFrom = std::make_shared<ArchCheckpoint>(a);
    EXPECT_NE(oa.resultKey(), ob.resultKey());
    EXPECT_EQ(oa.resultKey(), oa2.resultKey());
}

// ----------------------------------------------------- protocol basics

TEST(ServeProtocol, ConfigJsonRoundTrips)
{
    for (unsigned width : {4u, 8u}) {
        for (MachineKind kind :
             {MachineKind::Baseline, MachineKind::RbLimited,
              MachineKind::RbFull, MachineKind::Ideal}) {
            const MachineConfig cfg = MachineConfig::make(kind, width);
            const MachineConfig round =
                serve::configFromJson(serve::configToJson(cfg));
            EXPECT_EQ(serve::configKey(cfg), serve::configKey(round));
        }
    }
    // An ablation knob survives the wire.
    MachineConfig ab = MachineConfig::makeIdealLimited(4, 0b001);
    ab.label = "Ideal-L1";
    const MachineConfig round =
        serve::configFromJson(serve::configToJson(ab));
    EXPECT_EQ(serve::configKey(ab), serve::configKey(round));
    EXPECT_EQ(round.bypassLevelMask, 0b001);
}

TEST(ServeProtocol, RequestParsing)
{
    const serve::JobRequest req = serve::parseRequest(std::string(
        R"({"id":"j1","workload":"gcc","scale":2,"machine":"rblim",)"
        R"("width":8,"scheduler":"polled","max_cycles":1000,)"
        R"("cosim":false,"stats":["core.ipc"]})"));
    EXPECT_EQ(req.id, "j1");
    EXPECT_EQ(req.workload, "gcc");
    EXPECT_EQ(req.scale, 2u);
    EXPECT_EQ(req.maxCycles, 1000u);
    EXPECT_FALSE(req.cosim);
    ASSERT_EQ(req.statSelect.size(), 1u);

    const MachineConfig cfg = serve::requestConfig(req);
    EXPECT_EQ(cfg.kind, MachineKind::RbLimited);
    EXPECT_EQ(cfg.width, 8u);
    EXPECT_TRUE(cfg.polledScheduler);
    EXPECT_FALSE(cfg.wakeupOracle);
}

// ------------------------------------------------- server edge cases

/** A Server wired to an in-memory response sink. */
struct TestServer
{
    explicit TestServer(serve::Server::Options opts = makeOpts())
        : server(opts, [this](const std::string &line) {
              std::lock_guard<std::mutex> lock(mu);
              lines.push_back(line);
          })
    {}

    static serve::Server::Options
    makeOpts()
    {
        serve::Server::Options o;
        o.service.workers = 1;
        return o;
    }

    /** Feed a line and wait for every accepted job to respond. */
    std::vector<Json>
    roundTrip(const std::string &line)
    {
        server.handleLine(line);
        server.drain();
        std::lock_guard<std::mutex> lock(mu);
        std::vector<Json> parsed;
        for (const std::string &l : lines)
            parsed.push_back(Json::parse(l));
        lines.clear();
        return parsed;
    }

    std::mutex mu;
    std::vector<std::string> lines;
    serve::Server server;
};

void
expectError(const std::vector<Json> &resp, const char *code)
{
    ASSERT_EQ(resp.size(), 1u);
    const Json *ok = resp[0].find("ok");
    ASSERT_NE(ok, nullptr);
    EXPECT_FALSE(ok->asBool());
    const Json *c = resp[0].find("code");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->asString(), code);
}

TEST(ServeServer, StructuredErrorsAndSurvival)
{
    TestServer ts;

    expectError(ts.roundTrip("this is not json"), "parse");
    expectError(ts.roundTrip(R"({"id":"e1","workload":"compress",)"
                             R"("machine":"pentium"})"),
                "unknown-machine");
    expectError(ts.roundTrip(R"({"id":"e2","workload":"doom",)"
                             R"("machine":"base"})"),
                "unknown-workload");
    expectError(ts.roundTrip(R"({"id":"e3","workload":"compress",)"
                             R"("machine":"base","scheduler":"psychic"})"),
                "unknown-scheduler");
    // Shape errors: missing id, program+workload both, neither machine
    // nor config, unknown key.
    expectError(ts.roundTrip(R"({"workload":"compress","machine":"base"})"),
                "bad-request");
    expectError(ts.roundTrip(R"({"id":"e4","workload":"compress",)"
                             R"("program":"halt","machine":"base"})"),
                "bad-request");
    expectError(ts.roundTrip(R"({"id":"e5","workload":"compress"})"),
                "bad-request");
    expectError(ts.roundTrip(R"({"id":"e6","workload":"compress",)"
                             R"("machine":"base","frobnicate":1})"),
                "bad-request");
    expectError(ts.roundTrip(R"({"id":"e7","program":"not assembly",)"
                             R"("machine":"base"})"),
                "bad-program");

    // After all of that, the server still serves.
    const auto okResp = ts.roundTrip(
        R"({"id":"ok1","workload":"compress","machine":"base","width":4})");
    ASSERT_EQ(okResp.size(), 1u);
    EXPECT_TRUE(okResp[0].find("ok")->asBool());
    EXPECT_EQ(okResp[0].find("machine")->asString(), "Baseline");
    EXPECT_GT(okResp[0].find("ipc")->asDouble(), 0.0);
    EXPECT_EQ(ts.server.jobsOk(), 1u);
}

TEST(ServeServer, OversizedProgramsRejected)
{
    serve::Server::Options opts = TestServer::makeOpts();
    opts.maxProgramInsts = 3;
    opts.maxScale = 4;
    TestServer ts(opts);

    // The compress workload is far larger than 3 static instructions.
    expectError(ts.roundTrip(R"({"id":"o1","workload":"compress",)"
                             R"("machine":"base"})"),
                "oversized-program");
    expectError(ts.roundTrip(R"({"id":"o2","workload":"compress",)"
                             R"("machine":"base","scale":5})"),
                "oversized-program");
}

TEST(ServeServer, DuplicateIdAndDuplicateInFlight)
{
    TestServer ts;
    const std::string job =
        R"({"id":"d1","workload":"compress","machine":"ideal","width":4})";

    // Two identical jobs before the first completes: the second is
    // rejected as duplicate-in-flight (same payload), and its distinct
    // id is NOT burned by the rejection.
    ts.server.handleLine(job);
    const std::string job2 =
        R"({"id":"d2","workload":"compress","machine":"ideal","width":4})";
    ts.server.handleLine(job2);
    ts.server.drain();
    std::vector<Json> resp;
    {
        std::lock_guard<std::mutex> lock(ts.mu);
        for (const std::string &l : ts.lines)
            resp.push_back(Json::parse(l));
        ts.lines.clear();
    }
    ASSERT_EQ(resp.size(), 2u);
    // Response order is not guaranteed; find by id.
    const Json *first = nullptr, *second = nullptr;
    for (const Json &r : resp) {
        if (r.find("id")->asString() == "d1")
            first = &r;
        else if (r.find("id")->asString() == "d2")
            second = &r;
    }
    ASSERT_NE(first, nullptr);
    ASSERT_NE(second, nullptr);
    EXPECT_TRUE(first->find("ok")->asBool());
    EXPECT_FALSE(second->find("ok")->asBool());
    EXPECT_EQ(second->find("code")->asString(), "duplicate-in-flight");

    // Re-using a completed job's id is duplicate-id.
    expectError(ts.roundTrip(job), "duplicate-id");

    // The rejected d2 can resubmit now and gets a cache hit.
    const auto retry = ts.roundTrip(job2);
    ASSERT_EQ(retry.size(), 1u);
    EXPECT_TRUE(retry[0].find("ok")->asBool());
    EXPECT_TRUE(retry[0].find("cache_hit")->asBool());
}

// ------------------------------------------- aborts through the server

TEST(ServeServer, WatchdogAbortCarriesLocalRunDiagnostics)
{
    TestServer ts;
    // A watchdog window far below the fetch-to-first-retire latency
    // aborts every run as a (simulated) retirement deadlock.
    const auto resp = ts.roundTrip(
        R"({"id":"w1","workload":"compress",)"
        R"("config":{"kind":"base","deadlock_cycles":3}})");
    ASSERT_EQ(resp.size(), 1u);
    const Json &r = resp[0];
    EXPECT_FALSE(r.find("ok")->asBool());
    ASSERT_NE(r.find("code"), nullptr);
    EXPECT_EQ(r.find("code")->asString(), "sim-aborted");
    ASSERT_NE(r.find("abort_kind"), nullptr);
    EXPECT_EQ(r.find("abort_kind")->asString(), "watchdog-deadlock");
    ASSERT_NE(r.find("deadlock_aborts"), nullptr);
    EXPECT_GE(r.find("deadlock_aborts")->asU64(), 1u);
    // The watchdog fires inside the cold-start icache miss here, before
    // a single instruction enters the pipeline — the trace ring is
    // genuinely empty, and an empty ring is omitted, exactly as a local
    // run dumps nothing. (The cycle-budget test below pins the
    // non-empty-ring side.)
    EXPECT_EQ(r.find("trace"), nullptr);
    EXPECT_EQ(ts.server.jobsFailed(), 1u);

    // Aborted results are not cached: a rerun with a sane watchdog (a
    // distinct config, so a distinct key) succeeds.
    const auto okResp = ts.roundTrip(
        R"({"id":"w2","workload":"compress","machine":"base"})");
    ASSERT_EQ(okResp.size(), 1u);
    EXPECT_TRUE(okResp[0].find("ok")->asBool());
}

TEST(ServeServer, CycleBudgetAbortIsClassifiedDistinctly)
{
    TestServer ts;
    // 2000 cycles: far past warm-up, nowhere near completion — the
    // budget cuts the run mid-flight with a full pipeline, so the
    // last-N ring dump must ride along in the error record.
    const auto resp = ts.roundTrip(
        R"({"id":"c1","workload":"compress","machine":"base",)"
        R"("max_cycles":2000})");
    ASSERT_EQ(resp.size(), 1u);
    const Json &r = resp[0];
    EXPECT_FALSE(r.find("ok")->asBool());
    EXPECT_EQ(r.find("code")->asString(), "sim-aborted");
    EXPECT_EQ(r.find("abort_kind")->asString(), "cycle-budget");
    EXPECT_EQ(r.find("deadlock_aborts")->asU64(), 0u);
    ASSERT_NE(r.find("trace"), nullptr);
    EXPECT_NE(r.find("trace")->asString().find("O3PipeView:fetch:"),
              std::string::npos);
}

TEST(ServeServer, InstructionBudgetStopIsASuccess)
{
    TestServer ts;
    const auto resp = ts.roundTrip(
        R"({"id":"b1","workload":"compress","machine":"base",)"
        R"("max_insts":500})");
    ASSERT_EQ(resp.size(), 1u);
    const Json &r = resp[0];
    EXPECT_TRUE(r.find("ok")->asBool());
    EXPECT_FALSE(r.find("halted")->asBool());
    ASSERT_NE(r.find("inst_limited"), nullptr);
    EXPECT_TRUE(r.find("inst_limited")->asBool());
    EXPECT_GT(r.find("ipc")->asDouble(), 0.0);
}

// --------------------------------------------- sampled-request path

TEST(ServeServer, SampledRequestShipsMeanIpcWithCi)
{
    TestServer ts;
    const auto resp = ts.roundTrip(
        R"({"id":"s1","workload":"compress","machine":"rbfull",)"
        R"("sample":{"period_insts":4000,"warmup_insts":1000,)"
        R"("measure_insts":2000}})");
    ASSERT_EQ(resp.size(), 1u);
    const Json &r = resp[0];
    ASSERT_TRUE(r.find("ok")->asBool())
        << (r.find("error") ? r.find("error")->asString() : "");
    EXPECT_TRUE(r.find("sampled")->asBool());
    EXPECT_GE(r.find("windows")->asU64(), 2u);
    EXPECT_GT(r.find("ipc")->asDouble(), 0.0);
    ASSERT_NE(r.find("ipc_ci95"), nullptr);
    EXPECT_GE(r.find("ipc_ci95")->asDouble(), 0.0);
    EXPECT_TRUE(r.find("completed")->asBool());
    EXPECT_GT(r.find("ff_insts")->asU64(), 0u);
    ASSERT_NE(r.find("stats"), nullptr);

    // max_insts and sample are mutually exclusive.
    expectError(ts.roundTrip(
                    R"({"id":"s2","workload":"compress","machine":"base",)"
                    R"("max_insts":100,"sample":{"period_insts":1000,)"
                    R"("measure_insts":100}})"),
                "bad-request");
    // A zero-length regimen is rejected before any work happens.
    expectError(ts.roundTrip(
                    R"({"id":"s3","workload":"compress","machine":"base",)"
                    R"("sample":{"period_insts":0,"measure_insts":100}})"),
                "bad-request");
}

} // namespace
} // namespace rbsim
