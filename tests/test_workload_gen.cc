/**
 * @file
 * Tests for the workload-description API (src/workloads/gen/): the key
 * distributions match their theoretical curves, streams respect the
 * configured op mixes and taken-rates, pointer-chase footprints land in
 * the intended cache level, generation is seed-deterministic down to
 * Program::hash(), every family co-simulates bit-clean on the Figure 12
 * machine grid, and the Zipfian skew sweep moves the DL1 hit rate
 * monotonically.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "common/rng.hh"
#include "func/interp.hh"
#include "sim/simulator.hh"
#include "workloads/gen/keydist.hh"
#include "workloads/gen/opstream.hh"
#include "workloads/workload.hh"

namespace rbsim
{
namespace
{

using namespace rbsim::gen;

/** A fast-to-simulate variant of a preset for the timing-core tests. */
GenConfig
quick(const std::string &preset, std::uint32_t ops = 2048,
      unsigned trips = 1)
{
    GenConfig cfg = genPreset(preset);
    cfg.streamOps = ops;
    cfg.trips = trips;
    return cfg;
}

// ------------------------------------------------------ configuration

TEST(GenConfigNames, FamiliesAndDistsRoundTrip)
{
    for (GenFamily f : {GenFamily::KeyAccess, GenFamily::PointerChase,
                        GenFamily::BranchEntropy,
                        GenFamily::RbAdversarial}) {
        EXPECT_EQ(genFamilyFromName(genFamilyName(f)), f);
    }
    for (KeyDist d : {KeyDist::Uniform, KeyDist::Zipfian,
                      KeyDist::SelfSimilar}) {
        EXPECT_EQ(keyDistFromName(keyDistName(d)), d);
    }
    EXPECT_THROW(genFamilyFromName("nonesuch"), std::invalid_argument);
    EXPECT_THROW(keyDistFromName("nonesuch"), std::invalid_argument);
}

TEST(GenConfigNames, PresetsResolveAndParameterizedFormsParse)
{
    for (const std::string &name : genPresetNames()) {
        const GenConfig cfg = genPreset(name);
        EXPECT_EQ(cfg.name(), name) << "preset display name drifted";
    }
    EXPECT_DOUBLE_EQ(genPreset("zipf-0.75").skew, 0.75);
    EXPECT_EQ(genPreset("zipf-0.75").dist, KeyDist::Zipfian);
    EXPECT_DOUBLE_EQ(genPreset("selfsim-0.2").skew, 0.2);
    EXPECT_EQ(genPreset("selfsim-0.2").dist, KeyDist::SelfSimilar);
    EXPECT_DOUBLE_EQ(genPreset("branch-0.9").takenRate, 0.9);
    EXPECT_EQ(genPreset("branch-0.9").family, GenFamily::BranchEntropy);
    EXPECT_THROW(genPreset("nonesuch"), std::invalid_argument);
    EXPECT_THROW(genPreset("zipf-"), std::invalid_argument);
}

TEST(GenConfigJson, RoundTripsEveryFieldForTheWholeSweepSet)
{
    std::vector<GenConfig> configs = genSweepConfigs();
    for (const std::string &name : genPresetNames())
        configs.push_back(genPreset(name));
    GenConfig custom;
    custom.family = GenFamily::KeyAccess;
    custom.dist = KeyDist::SelfSimilar;
    custom.skew = 0.123;
    custom.numKeys = 777;
    custom.scramble = false;
    custom.readFrac = 0.1;
    custom.updateFrac = 0.2;
    custom.rmwFrac = 0.3;
    custom.scanFrac = 0.4;
    custom.scanLen = 9;
    custom.workingSetBytes = 12345;
    custom.nodeBytes = 32;
    custom.chaseSteps = 7;
    custom.takenRate = 0.42;
    custom.chainLen = 5;
    custom.streamOps = 99;
    custom.trips = 4;
    custom.label = "custom";
    configs.push_back(custom);

    for (const GenConfig &cfg : configs) {
        const GenConfig back = GenConfig::fromJson(cfg.toJson());
        EXPECT_EQ(back, cfg) << cfg.name();
        EXPECT_EQ(back.name(), cfg.name());
    }
}

TEST(GenConfigJson, RejectsMalformedInput)
{
    EXPECT_THROW(GenConfig::fromJson("[]"), std::exception);
    EXPECT_THROW(GenConfig::fromJson("{\"family\": \"bogus\"}"),
                 std::invalid_argument);
}

TEST(GenSweep, DefaultSetCoversEveryFamilyAndSkewOverrideWorks)
{
    const std::vector<GenConfig> sweep = genSweepConfigs();
    std::set<GenFamily> families;
    std::vector<double> zipfSkews;
    for (const GenConfig &cfg : sweep) {
        families.insert(cfg.family);
        if (cfg.family == GenFamily::KeyAccess &&
            cfg.dist == KeyDist::Zipfian) {
            zipfSkews.push_back(cfg.skew);
        }
    }
    EXPECT_EQ(families.size(), 4u);
    ASSERT_GE(zipfSkews.size(), 2u);
    EXPECT_DOUBLE_EQ(zipfSkews.front(), 0.5);
    EXPECT_DOUBLE_EQ(zipfSkews.back(), 0.99);
    EXPECT_TRUE(std::is_sorted(zipfSkews.begin(), zipfSkews.end()));

    const std::vector<GenConfig> two = genSweepConfigs({0.6, 0.8});
    unsigned zipfs = 0;
    for (const GenConfig &cfg : two) {
        zipfs += cfg.family == GenFamily::KeyAccess &&
                 cfg.dist == KeyDist::Zipfian;
    }
    EXPECT_EQ(zipfs, 2u);
}

// ------------------------------------------- statistical: key pickers

TEST(KeyDistStats, ZipfianEmpiricalRankFrequencyMatchesTheory)
{
    // Draw 200k ranks from zipfian(0.99) over 1024 keys and compare the
    // empirical frequency of the head ranks against the closed-form
    // rankProbability(). 3-sigma binomial tolerance per rank.
    const std::uint64_t n = 1024;
    const double theta = 0.99;
    KeyPicker picker(KeyDist::Zipfian, n, theta, /*scramble=*/false);
    const unsigned draws = 200'000;
    std::map<std::uint64_t, unsigned> hist;
    Rng rng(2026);
    for (unsigned i = 0; i < draws; ++i)
        ++hist[picker.pickRank(rng)];

    double mass = 0.0;
    for (std::uint64_t rank = 0; rank < 16; ++rank) {
        const double p = picker.rankProbability(rank);
        mass += p;
        const double sigma = std::sqrt(p * (1 - p) / draws);
        const double emp = double(hist[rank]) / draws;
        // Gray's construction handles ranks 0 and 1 as exact special
        // cases; the inverse-CDF tail is a deliberate approximation, so
        // deeper ranks get a relative band on top of the binomial noise.
        const double tol =
            3 * sigma + (rank < 2 ? 1e-4 : 0.25 * p);
        EXPECT_NEAR(emp, p, tol) << "rank " << rank;
    }
    // Zipfian(0.99) heads hard: the top 16 of 1024 ranks should carry
    // a third or more of the mass.
    EXPECT_GT(mass, 0.33);
    // Adjacent-rank ratio p(0)/p(1) = 2^theta.
    EXPECT_NEAR(picker.rankProbability(0) / picker.rankProbability(1),
                std::pow(2.0, theta), 1e-9);
}

TEST(KeyDistStats, SelfSimilarHotSetCarriesOneMinusH)
{
    // Gray's self-similar(h): a (1-h) share of accesses falls on the
    // hottest h*n keys. Check empirically at h = 0.2 (the 80/20 rule).
    const std::uint64_t n = 4096;
    const double h = 0.2;
    KeyPicker picker(KeyDist::SelfSimilar, n, h, /*scramble=*/false);
    const unsigned draws = 200'000;
    unsigned hot = 0;
    Rng rng(7);
    for (unsigned i = 0; i < draws; ++i)
        hot += picker.pickRank(rng) < std::uint64_t(h * n);
    EXPECT_NEAR(double(hot) / draws, 1.0 - h, 0.01);
}

TEST(KeyDistStats, UniformIsFlatAndScrambleIsAPermutation)
{
    const std::uint64_t n = 256;
    KeyPicker picker(KeyDist::Uniform, n, 0.0, /*scramble=*/false);
    const unsigned draws = 256 * 1000;
    std::vector<unsigned> hist(n, 0);
    Rng rng(11);
    for (unsigned i = 0; i < draws; ++i)
        ++hist[picker.pickRank(rng)];
    for (std::uint64_t k = 0; k < n; ++k)
        EXPECT_NEAR(hist[k] / double(draws), 1.0 / n, 0.2 / n) << k;

    // Scrambling must relocate hot ranks without collisions.
    KeyPicker scrambled(KeyDist::Zipfian, n, 0.9, /*scramble=*/true);
    std::set<std::uint64_t> slots;
    for (std::uint64_t rank = 0; rank < n; ++rank) {
        const std::uint64_t slot = scrambled.slotOfRank(rank);
        EXPECT_LT(slot, n);
        EXPECT_TRUE(slots.insert(slot).second)
            << "scramble collision at rank " << rank;
    }
}

TEST(KeyDistStats, HigherSkewConcentratesMoreMassOnTheHead)
{
    // The acceptance property behind the DL1 sweep: as theta rises
    // 0.5 -> 0.99 the head of the distribution (top 1% of ranks) must
    // carry strictly more probability mass.
    const std::uint64_t n = 64 * 1024;
    double prev = 0.0;
    for (double theta : {0.5, 0.6, 0.7, 0.8, 0.9, 0.99}) {
        KeyPicker picker(KeyDist::Zipfian, n, theta, false);
        double head = 0.0;
        for (std::uint64_t rank = 0; rank < n / 100; ++rank)
            head += picker.rankProbability(rank);
        EXPECT_GT(head, prev) << "theta " << theta;
        prev = head;
    }
}

// ------------------------------------------------ statistical: streams

TEST(StreamStats, YcsbMixesMatchTheirMolds)
{
    GenConfig a = quick("ycsb-a", 20'000);
    unsigned reads = 0, updates = 0, other = 0;
    for (const WorkloadOp &op : drawStream(a, 1)) {
        if (op.kind == WorkloadOp::Kind::KeyRead)
            ++reads;
        else if (op.kind == WorkloadOp::Kind::KeyUpdate)
            ++updates;
        else
            ++other;
    }
    EXPECT_EQ(other, 0u);
    EXPECT_NEAR(double(reads) / (reads + updates), 0.5, 0.02);

    for (const WorkloadOp &op : drawStream(quick("ycsb-c", 4096), 1))
        EXPECT_EQ(op.kind, WorkloadOp::Kind::KeyRead);

    unsigned scans = 0, rmws = 0;
    for (const WorkloadOp &op : drawStream(quick("ycsb-e", 4096), 1))
        scans += op.kind == WorkloadOp::Kind::KeyScan;
    for (const WorkloadOp &op : drawStream(quick("ycsb-f", 4096), 1))
        rmws += op.kind == WorkloadOp::Kind::KeyRmw;
    EXPECT_GT(scans, 4096u * 8 / 10);
    EXPECT_GT(rmws, 4096u * 4 / 10);
}

TEST(StreamStats, BranchTakenRateHitsTheConfiguredTarget)
{
    for (double rate : {0.5, 0.9, 0.99}) {
        GenConfig cfg = genPreset("branch-0.5");
        cfg.takenRate = rate;
        cfg.streamOps = 20'000;
        unsigned branches = 0, taken = 0;
        for (const WorkloadOp &op : drawStream(cfg, 3)) {
            if (op.kind == WorkloadOp::Kind::Branch) {
                ++branches;
                taken += op.taken;
            }
        }
        ASSERT_GT(branches, 10'000u);
        EXPECT_NEAR(double(taken) / branches, rate, 0.02)
            << "taken-rate " << rate;
    }
}

TEST(StreamStats, RbAdversarialStreamsAreComputeChainHeavy)
{
    unsigned rbBursts = 0, total = 0;
    const GenConfig cfg = quick("rb-adversarial", 4096);
    for (const WorkloadOp &op : drawStream(cfg, 5)) {
        ++total;
        if (op.kind == WorkloadOp::Kind::Compute) {
            EXPECT_TRUE(op.rb);
            EXPECT_EQ(op.len, cfg.chainLen);
            ++rbBursts;
        }
    }
    EXPECT_GT(rbBursts, total / 2);
}

// --------------------------------------------------- seed determinism

TEST(GenDeterminism, SameSeedSameHashDifferentSeedDifferentHash)
{
    for (const GenConfig &sweepCfg : genSweepConfigs({0.5, 0.99})) {
        GenConfig cfg = sweepCfg;
        cfg.streamOps = 512; // keep the full-sweep loop fast
        WorkloadParams wp;
        wp.seed = 42;
        const Program a = buildGenProgram(cfg, wp);
        const Program b = buildGenProgram(cfg, wp);
        EXPECT_EQ(a.hash(), b.hash()) << cfg.name();
        wp.seed = 43;
        const Program c = buildGenProgram(cfg, wp);
        EXPECT_NE(a.hash(), c.hash()) << cfg.name();
    }
}

TEST(GenDeterminism, RegistryLookupResolvesPresetsByName)
{
    const WorkloadInfo &info = findWorkload("ycsb-a");
    EXPECT_EQ(info.suite, "gen");
    EXPECT_EQ(info.name, "ycsb-a");
    // Interned: a second lookup hands back the same entry.
    EXPECT_EQ(&findWorkload("ycsb-a"), &info);
    // The closure builds the same program as the direct path.
    WorkloadParams wp;
    wp.seed = 9;
    EXPECT_EQ(info.build(wp).hash(),
              buildGenProgram(genPreset("ycsb-a"), wp).hash());
    EXPECT_THROW(findWorkload("nonesuch"), std::out_of_range);
}

TEST(GenDeterminism, PresetInternTableIsABoundedLru)
{
    // Regression: the intern table used to be an unbounded deque with an
    // O(n) scan under the global mutex — a server fed a stream of
    // distinct parametric presets grew it forever. Now it is a bounded
    // LRU: feed it well past capacity and the bound must hold.
    const std::size_t cap = internedWorkloadCap();
    ASSERT_GT(cap, 0u);
    char name[32];
    for (std::size_t i = 0; i < cap + 64; ++i) {
        std::snprintf(name, sizeof(name), "branch-0.%04zu", 1000 + i);
        const WorkloadInfo &info = findWorkload(name);
        EXPECT_EQ(info.name, name);
        EXPECT_LE(internedWorkloadCount(), cap);
    }
    EXPECT_EQ(internedWorkloadCount(), cap);

    // Repeat lookups are hits: they must not grow the table, and they
    // keep handing back the same (address-stable) entry.
    const std::size_t resident = internedWorkloadCount();
    const WorkloadInfo &hot = findWorkload("branch-0.1500");
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(&findWorkload("branch-0.1500"), &hot);
    EXPECT_EQ(internedWorkloadCount(), resident);
}

// ------------------------------------------------- timing-core checks

TEST(GenTiming, EveryFamilyCosimsCleanOnTheFig12Grid)
{
    // One representative per family, co-simulated on all four machine
    // kinds of the paper's Figure 12 grid at width 4. simulate() throws
    // CosimMismatch on divergence; the counter check guards the wiring.
    for (const char *preset : {"ycsb-a", "chase-dl1", "branch-0.9",
                               "rb-adversarial"}) {
        const Program p = buildGenProgram(quick(preset, 1024),
                                          WorkloadParams{});
        for (MachineKind kind :
             {MachineKind::Baseline, MachineKind::RbLimited,
              MachineKind::RbFull, MachineKind::Ideal}) {
            const MachineConfig cfg = MachineConfig::make(kind, 4);
            const SimResult r = simulate(cfg, p);
            EXPECT_TRUE(r.halted) << preset << " on " << cfg.label;
            EXPECT_EQ(r.counter("cosim.checked"),
                      r.counter("core.retired"))
                << preset << " on " << cfg.label;
        }
    }
}

TEST(GenTiming, ChaseFootprintLandsInTheConfiguredCacheLevel)
{
    // DL1 is 8 KiB and L2 is 1 MiB (machine_config.hh); the presets ride
    // 4 KiB / 256 KiB / 4 MiB rings. A resident ring chases at near-zero
    // miss rate; an over-capacity one misses nearly every deref.
    const MachineConfig cfg = MachineConfig::make(MachineKind::Baseline, 8);
    auto rates = [&](const char *preset, unsigned trips) {
        // Enough trips to amortize the compulsory misses of the first
        // pass around the ring (they would otherwise dominate L2).
        const SimResult r = simulate(
            cfg,
            buildGenProgram(quick(preset, 4096, trips), WorkloadParams{}));
        EXPECT_TRUE(r.halted) << preset;
        const double dl1 = double(r.counter("dl1.misses")) /
                           double(r.counter("dl1.accesses"));
        const double l2 = r.counter("l2.accesses")
                              ? double(r.counter("l2.misses")) /
                                    double(r.counter("l2.accesses"))
                              : 0.0;
        return std::pair<double, double>(dl1, l2);
    };

    const auto [dl1A, l2A] = rates("chase-dl1", 1);
    EXPECT_LT(dl1A, 0.05);

    const auto [dl1B, l2B] = rates("chase-l2", 4);
    EXPECT_GT(dl1B, 0.25); // spills DL1...
    EXPECT_LT(l2B, 0.30);  // ...but stays L2-resident

    const auto [dl1C, l2C] = rates("chase-mem", 1);
    EXPECT_GT(dl1C, 0.25);
    EXPECT_GT(l2C, 0.80); // spills L2 too: every chase goes to memory
    (void)l2A;
}

TEST(GenTiming, Dl1HitRateRisesMonotonicallyWithZipfianSkew)
{
    // The ISSUE acceptance check: sweeping skew 0.5 -> 0.99 over the
    // same key table must monotonically improve DL1 locality.
    const MachineConfig cfg = MachineConfig::make(MachineKind::Baseline, 8);
    double prevMiss = 1.0;
    for (double skew : {0.5, 0.7, 0.9, 0.99}) {
        GenConfig gc = genPreset("zipf-0.50");
        gc.skew = skew;
        gc.streamOps = 4096;
        gc.trips = 1;
        const SimResult r =
            simulate(cfg, buildGenProgram(gc, WorkloadParams{}));
        EXPECT_TRUE(r.halted);
        const double miss = double(r.counter("dl1.misses")) /
                            double(r.counter("dl1.accesses"));
        EXPECT_LT(miss, prevMiss) << "skew " << skew;
        prevMiss = miss;
    }
}

TEST(GenTiming, RbAdversarialPunishesTheRbMachinesMost)
{
    // The shift->logical chains exist to charge the RB machines the
    // Table 3 TC-conversion latency: both RB configs must trail the
    // Baseline on this workload (the opposite of the paper's headline
    // result on balanced code).
    const Program p =
        buildGenProgram(quick("rb-adversarial"), WorkloadParams{});
    auto ipc = [&](MachineKind kind) {
        const SimResult r =
            simulate(MachineConfig::make(kind, 8), p);
        EXPECT_TRUE(r.halted);
        return r.ipc();
    };
    const double base = ipc(MachineKind::Baseline);
    EXPECT_LT(ipc(MachineKind::RbLimited), base);
    EXPECT_LT(ipc(MachineKind::RbFull), base);
}

// ----------------------------------------------------- lowered shapes

TEST(GenLowering, ProgramsHaltOnTheReferenceInterpreter)
{
    for (const std::string &name : genPresetNames()) {
        const Program p =
            buildGenProgram(quick(name, 512), WorkloadParams{});
        Interp in(p);
        in.run(5'000'000);
        EXPECT_TRUE(in.halted()) << name;
        EXPECT_GT(in.instsExecuted(), 512u) << name;
    }
}

TEST(GenLowering, ScaleKnobMultipliesTrips)
{
    const GenConfig cfg = quick("ycsb-b", 512);
    WorkloadParams wp1;
    WorkloadParams wp3;
    wp3.scale = 3;
    // Interp binds to the program by reference: keep both alive.
    const Program p1 = buildGenProgram(cfg, wp1);
    const Program p3 = buildGenProgram(cfg, wp3);
    Interp a(p1);
    Interp b(p3);
    a.run(20'000'000);
    b.run(20'000'000);
    ASSERT_TRUE(a.halted() && b.halted());
    EXPECT_GT(b.instsExecuted(), 2 * a.instsExecuted());
}

} // namespace
} // namespace rbsim
