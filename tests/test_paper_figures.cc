/**
 * @file
 * End-to-end regression of the paper's worked examples: the Figure 4
 * dependency graph must produce the Figure 5 schedule on the RB machine
 * with full bypass and the Figure 7 schedule with the limited network,
 * from live simulation.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/core.hh"
#include "isa/assembler.hh"

namespace rbsim
{
namespace
{

/** Issue cycles of pc range [first,last], keyed by pc, relative to the
 * producer's issue. */
std::map<std::uint64_t, Cycle>
relativeIssues(const MachineConfig &cfg, const Program &prog,
               std::uint64_t first, std::uint64_t last)
{
    OooCore core(cfg, prog);
    std::map<std::uint64_t, Cycle> abs;
    core.onRetire([&](const RobEntry &e) {
        if (e.pcIndex >= first && e.pcIndex <= last)
            abs[e.pcIndex] = e.issueCycle;
    });
    EXPECT_TRUE(core.run(100000));
    std::map<std::uint64_t, Cycle> rel;
    const Cycle base = abs.at(first);
    for (const auto &[pc, cyc] : abs)
        rel[pc] = cyc - base;
    return rel;
}

Program
figure4Program()
{
    // Setup constants settle into the register file behind a serial
    // chain that the producer extends (the paper's example assumes
    // register-resident inputs).
    return assemble(R"(
            ldiq r3, 3
            ldiq r5, 11
            ldiq r9, 1
            addq r9, #1, r9
            addq r9, #1, r9
            addq r9, #1, r9
            addq r9, #1, r9
            addq r9, #1, r9
            addq r9, #1, r9
            addq r9, #1, r9
            addq r9, #1, r9
            addq r9, #1, r2    ; producer
            and  r2, r3, r4    ; TC consumer
            addq r2, r5, r6    ; RB consumer
            subq r6, r2, r7    ; consumes both intermediates
            halt
    )");
}

TEST(PaperFigures, Figure5ScheduleOnFullBypass)
{
    const Program p = figure4Program();
    const MachineConfig cfg = MachineConfig::make(MachineKind::RbFull, 4);
    const auto rel = relativeIssues(cfg, p, 11, 14);
    EXPECT_EQ(rel.at(11), 0u); // producer
    EXPECT_EQ(rel.at(12), 3u); // AND: converter output (BYP-3)
    EXPECT_EQ(rel.at(13), 1u); // ADD: BYP-1, back-to-back
    EXPECT_EQ(rel.at(14), 2u); // SUB: one cycle behind the ADD
}

TEST(PaperFigures, Figure7ScheduleOnLimitedBypass)
{
    const Program p = figure4Program();
    const MachineConfig cfg =
        MachineConfig::make(MachineKind::RbLimited, 4);
    const auto rel = relativeIssues(cfg, p, 11, 14);
    EXPECT_EQ(rel.at(11), 0u); // producer
    EXPECT_EQ(rel.at(12), 3u); // AND: BYP-3 still reaches TC units
    EXPECT_EQ(rel.at(13), 1u); // ADD: catches BYP-1
    // The SUB misses the ADD's single BYP-1 window (the producer's value
    // is in its hole that cycle) and retrieves both operands from the
    // register file: the paper's 3-cycle slip.
    EXPECT_EQ(rel.at(14), 5u);
}

TEST(PaperFigures, BaselineAndIdealSchedules)
{
    const Program p = figure4Program();
    // Ideal: everything single-format and 1-cycle.
    const auto ideal = relativeIssues(
        MachineConfig::make(MachineKind::Ideal, 4), p, 11, 14);
    EXPECT_EQ(ideal.at(13), 1u);
    EXPECT_EQ(ideal.at(12), 1u); // no converter: AND back-to-back too
    EXPECT_EQ(ideal.at(14), 2u);
    // Baseline: 2-cycle adds expose their latency in the chain.
    const auto base = relativeIssues(
        MachineConfig::make(MachineKind::Baseline, 4), p, 11, 14);
    EXPECT_EQ(base.at(13), 2u);
    EXPECT_EQ(base.at(14), 4u);
    EXPECT_EQ(base.at(12), 2u); // AND consumes at the 2-cycle latency
}

TEST(PaperFigures, HoleUnawareSchedulerForfeitsByp1)
{
    // Without the section 4.3 wakeup, even the direct RB consumer cannot
    // use the one-cycle BYP-1 window on the limited network.
    const Program p = figure4Program();
    MachineConfig cfg = MachineConfig::make(MachineKind::RbLimited, 4);
    cfg.holeAwareScheduling = false;
    const auto rel = relativeIssues(cfg, p, 11, 14);
    EXPECT_EQ(rel.at(13), 4u); // register file instead of BYP-1
}

} // namespace
} // namespace rbsim
