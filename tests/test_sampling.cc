/**
 * @file
 * SMARTS-style sampling (src/sim/sampling.hh, src/serve/sampled.hh):
 *  - checkpoint collection lands on the systematic sampling grid and
 *    reports the true functional stream length;
 *  - the 95% CI math matches hand-computed Student t values;
 *  - merged window stats are sums with formulas recomputed as ratios of
 *    sums;
 *  - THE ACCEPTANCE CHECK: a sampled run and a full-detail run of the
 *    same workload agree on IPC within the sampled run's reported 95%
 *    CI, across the Figure 12 machine grid;
 *  - a campaign sharded across the SimService worker pool merges to
 *    exactly the in-process simulateSampled() numbers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "func/interp.hh"
#include "serve/sampled.hh"
#include "serve/service.hh"
#include "sim/sampling.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace rbsim
{
namespace
{

Program
testProgram(const char *workload = "compress")
{
    WorkloadParams wp;
    return findWorkload(workload).build(wp);
}

/** Dynamic (architectural) instruction count of a program. */
std::uint64_t
dynLength(const Program &prog)
{
    Interp interp(prog);
    while (!interp.halted())
        interp.run(1u << 20);
    return interp.instsExecuted();
}

/** A regimen scaled to the program: ~`windows` windows, half of each
 * period measured after a quarter-period detailed warmup. */
SamplingOptions
regimenFor(std::uint64_t len, std::uint64_t windows)
{
    SamplingOptions opts;
    opts.periodInsts = std::max<std::uint64_t>(len / windows, 64);
    opts.warmupInsts = opts.periodInsts / 4;
    opts.measureInsts = opts.periodInsts / 2;
    return opts;
}

// ------------------------------------------------ checkpoint schedule

TEST(CheckpointCollection, LandsOnTheSamplingGrid)
{
    const Program prog = testProgram();
    const std::uint64_t len = dynLength(prog);
    const MachineConfig cfg = MachineConfig::make(MachineKind::RbFull, 4);

    SamplingOptions opts;
    opts.skipInsts = 500;
    opts.periodInsts = 3000;
    std::uint64_t ffInsts = 0;
    bool completed = false;
    const auto points =
        collectCheckpoints(cfg, prog, opts, &ffInsts, &completed);

    ASSERT_FALSE(points.empty());
    EXPECT_EQ(points.size(), (len - opts.skipInsts + opts.periodInsts - 1) /
                                 opts.periodInsts);
    for (std::size_t k = 0; k < points.size(); ++k)
        EXPECT_EQ(points[k]->instsExecuted,
                  opts.skipInsts + k * opts.periodInsts);
    EXPECT_EQ(ffInsts, len) << "must report the true stream length";
    EXPECT_TRUE(completed);
}

TEST(CheckpointCollection, WindowCapStopsEarly)
{
    const Program prog = testProgram();
    const MachineConfig cfg = MachineConfig::make(MachineKind::RbFull, 4);
    SamplingOptions opts;
    opts.periodInsts = 1000;
    opts.maxWindows = 3;
    const auto points = collectCheckpoints(cfg, prog, opts);
    EXPECT_EQ(points.size(), 3u);
}

// ------------------------------------------------------------ CI math

TEST(Ci95, MatchesStudentT)
{
    EXPECT_EQ(ci95HalfWidth({}), 0.0);
    EXPECT_EQ(ci95HalfWidth({1.0}), 0.0);

    // n = 3: mean 2, sample sd 1, t(0.975, df=2) = 4.303.
    const double ci3 = ci95HalfWidth({1.0, 2.0, 3.0});
    EXPECT_NEAR(ci3, 4.303 / std::sqrt(3.0), 1e-9);

    // Zero variance collapses the interval.
    EXPECT_EQ(ci95HalfWidth({2.5, 2.5, 2.5, 2.5}), 0.0);

    // Large n approaches the normal quantile.
    std::vector<double> xs;
    for (int i = 0; i < 100; ++i)
        xs.push_back(i % 2 ? 1.0 : -1.0);
    const double sd = std::sqrt(100.0 / 99.0);
    EXPECT_NEAR(ci95HalfWidth(xs), 1.96 * sd / 10.0, 1e-9);
}

// -------------------------------------------------------- merged stats

TEST(MergedStats, SumsCountersAndRecomputesRatios)
{
    StatSnapshot a, b, merged;
    a.counters["core.retired"] = 100;
    a.counters["core.cycles"] = 50;
    a.formulas["core.ipc"] = 2.0;
    a.vectors["core.retireHist"] = {1, 2};
    b.counters["core.retired"] = 100;
    b.counters["core.cycles"] = 150;
    b.formulas["core.ipc"] = 100.0 / 150.0;
    b.vectors["core.retireHist"] = {4, 5, 6};

    accumulateWindowStats(merged, a);
    accumulateWindowStats(merged, b);
    finalizeMergedStats(merged);

    EXPECT_EQ(merged.counter("core.retired"), 200u);
    EXPECT_EQ(merged.counter("core.cycles"), 200u);
    // Ratio of sums (1.0), NOT the mean of the per-window ratios (1.33).
    EXPECT_DOUBLE_EQ(merged.value("core.ipc"), 1.0);
    const std::vector<std::uint64_t> want = {5, 7, 6};
    EXPECT_EQ(merged.vec("core.retireHist"), want);
}

// ----------------------------------------------- the acceptance check

/**
 * ISSUE acceptance criterion: a full-detail run and a sampled run of
 * the same workload agree on IPC within the sampled run's reported 95%
 * confidence interval, on the Figure 12 machine grid.
 */
TEST(SampledVsFull, AgreeWithinCi95OnTheFig12Grid)
{
    const Program prog = testProgram();
    const std::uint64_t len = dynLength(prog);
    const SamplingOptions opts = regimenFor(len, 10);

    for (MachineKind kind :
         {MachineKind::Baseline, MachineKind::RbLimited,
          MachineKind::RbFull, MachineKind::Ideal}) {
        const MachineConfig cfg = MachineConfig::make(kind, 4);
        const SimResult full = simulate(cfg, prog);
        ASSERT_TRUE(full.halted);

        const SampledResult sampled = simulateSampled(cfg, prog, opts);
        ASSERT_GE(sampled.windows, 2u) << cfg.label;
        EXPECT_TRUE(sampled.completed);
        EXPECT_EQ(sampled.ffInsts, len);

        EXPECT_LE(std::abs(full.ipc() - sampled.ipcMean),
                  sampled.ipcCi95)
            << cfg.label << ": full " << full.ipc() << " vs sampled "
            << sampled.ipcMean << " +/- " << sampled.ipcCi95;
    }
}

TEST(SampledVsFull, MeasuredWindowsHaveTheRequestedLength)
{
    const Program prog = testProgram();
    const std::uint64_t len = dynLength(prog);
    const SamplingOptions opts = regimenFor(len, 8);
    const MachineConfig cfg = MachineConfig::make(MachineKind::RbFull, 4);

    const SampledResult res = simulateSampled(cfg, prog, opts);
    ASSERT_GE(res.windows, 2u);
    // Every window but possibly the last measures exactly measureInsts
    // retired instructions (the budget stops retirement at the boundary;
    // the tail window may reach HALT first).
    const std::uint64_t retired = res.merged.counter("core.retired");
    EXPECT_GE(retired, (res.windows - 1) * opts.measureInsts);
    EXPECT_LE(retired, res.windows * opts.measureInsts);
    // The merged IPC formula is the ratio of the summed counters.
    EXPECT_DOUBLE_EQ(res.merged.value("core.ipc"),
                     static_cast<double>(retired) /
                         static_cast<double>(
                             res.merged.counter("core.cycles")));
}

// ------------------------------------------------- sharded campaigns

TEST(ShardedSampling, MergesToExactlyTheInProcessNumbers)
{
    const Program prog = testProgram();
    const std::uint64_t len = dynLength(prog);
    const SamplingOptions opts = regimenFor(len, 6);
    const MachineConfig cfg = MachineConfig::make(MachineKind::RbFull, 4);

    const SampledResult inproc = simulateSampled(cfg, prog, opts);

    serve::SimService service(
        serve::SimService::Options{/*workers=*/4, /*cacheCapacity=*/64});
    const serve::SampledOutcome sharded =
        serve::runSampled(service, cfg, prog, opts);

    ASSERT_TRUE(sharded.ok) << sharded.error;
    EXPECT_EQ(sharded.result.windows, inproc.windows);
    EXPECT_EQ(sharded.result.ffInsts, inproc.ffInsts);
    EXPECT_EQ(sharded.result.completed, inproc.completed);
    // Stream-order merge: bit-equal window IPCs, merged stats, mean, CI
    // regardless of which worker finished which window first.
    EXPECT_EQ(sharded.result.windowIpc, inproc.windowIpc);
    EXPECT_EQ(sharded.result.merged, inproc.merged);
    EXPECT_EQ(sharded.result.ipcMean, inproc.ipcMean);
    EXPECT_EQ(sharded.result.ipcCi95, inproc.ipcCi95);

    // Windows are cacheable (keyed by checkpoint fingerprint): a repeat
    // campaign executes nothing new.
    const std::uint64_t executed = service.counters().jobsExecuted;
    const serve::SampledOutcome again =
        serve::runSampled(service, cfg, prog, opts);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(again.result.ipcMean, sharded.result.ipcMean);
    EXPECT_EQ(service.counters().jobsExecuted, executed);
}

} // namespace
} // namespace rbsim
