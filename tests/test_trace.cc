/**
 * @file
 * Tests for the pipeline tracer: record capture through the retire hook,
 * log and diagram rendering, capacity capping, and composition with
 * co-simulation.
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "isa/assembler.hh"
#include "sim/cosim.hh"
#include "sim/trace.hh"

namespace rbsim
{
namespace
{

Program
tinyLoop()
{
    return assemble(R"(
            ldiq r1, 20
        loop:
            addq r1, r1, r2
            subq r1, #1, r1
            bne r1, loop
            halt
    )");
}

TEST(Trace, RecordsRetirementOrderTimings)
{
    const Program p = tinyLoop();
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 8);
    OooCore core(cfg, p);
    PipelineTrace trace;
    core.onRetire([&trace](const RobEntry &e) { trace.record(e); });
    ASSERT_TRUE(core.run(100000));

    ASSERT_EQ(trace.all().size(), core.stats().retired);
    Cycle prev_issue_dispatch = 0;
    for (const TraceRecord &r : trace.all()) {
        EXPECT_LE(r.dispatch, r.issue);
        EXPECT_LT(r.issue, r.complete);
        // Retirement order implies nondecreasing dispatch cycles.
        EXPECT_GE(r.dispatch, prev_issue_dispatch);
        prev_issue_dispatch = r.dispatch;
    }
}

TEST(Trace, CapBoundsMemory)
{
    const Program p = tinyLoop();
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 8);
    OooCore core(cfg, p);
    PipelineTrace trace(5);
    core.onRetire([&trace](const RobEntry &e) { trace.record(e); });
    ASSERT_TRUE(core.run(100000));
    EXPECT_EQ(trace.all().size(), 5u);
}

TEST(Trace, LogRendersAnnotations)
{
    const Program p = tinyLoop();
    const MachineConfig cfg =
        MachineConfig::make(MachineKind::RbFull, 8);
    OooCore core(cfg, p);
    PipelineTrace trace;
    core.onRetire([&trace](const RobEntry &e) { trace.record(e); });
    ASSERT_TRUE(core.run(100000));

    const std::string log = trace.renderLog(0, 10);
    EXPECT_NE(log.find("ldiq r1, 20"), std::string::npos);
    EXPECT_NE(log.find("issue="), std::string::npos);
    // The loop has a dependent add chain: some record shows a bypass
    // annotation.
    EXPECT_NE(trace.renderLog(0, trace.all().size()).find("[byp+"),
              std::string::npos);
}

TEST(Trace, DiagramHasOneRowPerInstruction)
{
    const Program p = tinyLoop();
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 8);
    OooCore core(cfg, p);
    PipelineTrace trace;
    core.onRetire([&trace](const RobEntry &e) { trace.record(e); });
    ASSERT_TRUE(core.run(100000));

    const std::string diagram = trace.renderDiagram(1, 6);
    unsigned rows = 0;
    for (char c : diagram)
        rows += c == '\n';
    EXPECT_EQ(rows, 6u);
    EXPECT_NE(diagram.find('E'), std::string::npos);
}

TEST(Trace, ComposesWithCosim)
{
    const Program p = tinyLoop();
    const MachineConfig cfg =
        MachineConfig::make(MachineKind::RbLimited, 4);
    OooCore core(cfg, p);
    PipelineTrace trace;
    CosimChecker checker(p);
    core.onRetire([&](const RobEntry &e) {
        checker.onRetire(e);
        trace.record(e);
    });
    ASSERT_TRUE(core.run(100000));
    EXPECT_EQ(checker.checked(), trace.all().size());
}

} // namespace
} // namespace rbsim
