/**
 * @file
 * Tests for the pipeline tracer: record capture through the retire hook,
 * log and diagram rendering, capacity capping, and composition with
 * co-simulation.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/core.hh"
#include "isa/assembler.hh"
#include "sim/cosim.hh"
#include "sim/simulator.hh"
#include "sim/trace.hh"
#include "trace/tracer.hh"

namespace rbsim
{
namespace
{

Program
tinyLoop()
{
    return assemble(R"(
            ldiq r1, 20
        loop:
            addq r1, r1, r2
            subq r1, #1, r1
            bne r1, loop
            halt
    )");
}

TEST(Trace, RecordsRetirementOrderTimings)
{
    const Program p = tinyLoop();
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 8);
    OooCore core(cfg, p);
    PipelineTrace trace;
    core.onRetire([&trace](const RobEntry &e) { trace.record(e); });
    ASSERT_TRUE(core.run(100000));

    ASSERT_EQ(trace.all().size(), core.stats().retired);
    Cycle prev_issue_dispatch = 0;
    for (const TraceRecord &r : trace.all()) {
        EXPECT_LE(r.dispatch, r.issue);
        EXPECT_LT(r.issue, r.complete);
        // Retirement order implies nondecreasing dispatch cycles.
        EXPECT_GE(r.dispatch, prev_issue_dispatch);
        prev_issue_dispatch = r.dispatch;
    }
}

TEST(Trace, CapBoundsMemory)
{
    const Program p = tinyLoop();
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 8);
    OooCore core(cfg, p);
    PipelineTrace trace(5);
    core.onRetire([&trace](const RobEntry &e) { trace.record(e); });
    ASSERT_TRUE(core.run(100000));
    EXPECT_EQ(trace.all().size(), 5u);
}

TEST(Trace, LogRendersAnnotations)
{
    const Program p = tinyLoop();
    const MachineConfig cfg =
        MachineConfig::make(MachineKind::RbFull, 8);
    OooCore core(cfg, p);
    PipelineTrace trace;
    core.onRetire([&trace](const RobEntry &e) { trace.record(e); });
    ASSERT_TRUE(core.run(100000));

    const std::string log = trace.renderLog(0, 10);
    EXPECT_NE(log.find("ldiq r1, 20"), std::string::npos);
    EXPECT_NE(log.find("issue="), std::string::npos);
    // The loop has a dependent add chain: some record shows a bypass
    // annotation.
    EXPECT_NE(trace.renderLog(0, trace.all().size()).find("[byp+"),
              std::string::npos);
}

TEST(Trace, DiagramHasOneRowPerInstruction)
{
    const Program p = tinyLoop();
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 8);
    OooCore core(cfg, p);
    PipelineTrace trace;
    core.onRetire([&trace](const RobEntry &e) { trace.record(e); });
    ASSERT_TRUE(core.run(100000));

    const std::string diagram = trace.renderDiagram(1, 6);
    unsigned rows = 0;
    for (char c : diagram)
        rows += c == '\n';
    EXPECT_EQ(rows, 6u);
    EXPECT_NE(diagram.find('E'), std::string::npos);
}

TEST(Trace, ComposesWithCosim)
{
    const Program p = tinyLoop();
    const MachineConfig cfg =
        MachineConfig::make(MachineKind::RbLimited, 4);
    OooCore core(cfg, p);
    PipelineTrace trace;
    CosimChecker checker(p);
    core.onRetire([&](const RobEntry &e) {
        checker.onRetire(e);
        trace.record(e);
    });
    ASSERT_TRUE(core.run(100000));
    EXPECT_EQ(checker.checked(), trace.all().size());
}

// ----------------------------------------- O3PipeView tracer (src/trace)

/** ~20 static instructions covering the annotation surface: a bypassed
 * add chain, a multiply, store-to-load forwarding, and a data-dependent
 * branch that mispredicts (squash records). Fixed — the golden trace
 * below is committed. */
Program
goldenProgram()
{
    return assemble(R"(
        .name pipeview-golden
            ldiq r1, 5
            ldiq r2, 7
            ldiq r10, 0x40000
            ldiq r20, 6
        loop:
            addq r1, r2, r3
            mulq r3, r2, r4
            addq r4, #1, r1
            stq r3, 0(r10)
            ldq r5, 0(r10)
            addq r5, r1, r2
            subq r2, r3, r6
            blbs r6, skip
            addq r6, #2, r2
            cttz r2, r7
            addq r7, r1, r1
        skip:
            subq r20, #1, r20
            bne r20, loop
            stq r2, 8(r10)
            halt
    )");
}

trace::Tracer::Options
tracerOptions(const MachineConfig &cfg, const Program &p)
{
    trace::Tracer::Options topts;
    topts.codeBase = p.codeBase;
    topts.decodeDepth = cfg.fetchDecodeDepth;
    topts.renameDepth = cfg.renameDepth;
    return topts;
}

/** Stream-trace one simulate() run. */
std::string
traceRun(const MachineConfig &cfg, const Program &p)
{
    std::ostringstream os;
    trace::Tracer::Options topts = tracerOptions(cfg, p);
    topts.stream = &os;
    trace::Tracer tracer(topts);
    SimOptions opts;
    opts.tracer = &tracer;
    const SimResult r = simulate(cfg, p, opts);
    EXPECT_TRUE(r.halted);
    return os.str();
}

TEST(PipeView, GoldenTrace)
{
    // The committed golden trace pins the full observable output of the
    // tracer — stage timestamps, emission order, bypass/hole/squash
    // annotations — for one RB-full run. Regenerate deliberately with
    //   RBSIM_REGEN_GOLDEN=1 ./build/tests/test_trace
    //       --gtest_filter=PipeView.GoldenTrace
    // and review the diff like any behavior change.
    const std::string golden_path =
        std::string(RBSIM_GOLDEN_DIR) + "/pipeview-golden.trace";
    const Program p = goldenProgram();
    const MachineConfig cfg =
        MachineConfig::make(MachineKind::RbFull, 4);
    const std::string got = traceRun(cfg, p);
    ASSERT_FALSE(got.empty());

    if (std::getenv("RBSIM_REGEN_GOLDEN")) {
        std::ofstream out(golden_path, std::ios::binary);
        ASSERT_TRUE(out) << golden_path;
        out << got;
        GTEST_SKIP() << "regenerated " << golden_path;
    }
    std::ifstream in(golden_path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << golden_path
                    << " (bootstrap with RBSIM_REGEN_GOLDEN=1)";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got, want.str());
}

TEST(PipeView, StatSnapshotsBitIdenticalWithTracerAttached)
{
    // Tracing must be observation-only: a traced run and an untraced
    // run of the same program produce bit-identical statistics.
    const Program p = goldenProgram();
    for (const MachineKind kind :
         {MachineKind::Baseline, MachineKind::RbLimited,
          MachineKind::RbFull, MachineKind::Ideal}) {
        const MachineConfig cfg = MachineConfig::make(kind, 4);
        const SimResult plain = simulate(cfg, p);

        std::ostringstream os;
        trace::Tracer::Options topts = tracerOptions(cfg, p);
        topts.stream = &os;
        topts.ringCap = 32;
        trace::Tracer tracer(topts);
        SimOptions opts;
        opts.tracer = &tracer;
        const SimResult traced = simulate(cfg, p, opts);

        EXPECT_TRUE(plain.stats == traced.stats) << cfg.label;
        EXPECT_FALSE(os.str().empty());
    }
}

TEST(PipeView, FormatIsO3PipeView)
{
    const Program p = goldenProgram();
    const MachineConfig cfg =
        MachineConfig::make(MachineKind::RbFull, 4);
    const std::string text = traceRun(cfg, p);

    // Every line is an O3PipeView record; blocks are 7 lines from
    // fetch through retire, in fetch (trace-id) order.
    std::istringstream is(text);
    std::string line;
    std::vector<std::string> stages;
    unsigned blocks = 0;
    while (std::getline(is, line)) {
        ASSERT_EQ(line.rfind("O3PipeView:", 0), 0u) << line;
        stages.push_back(line.substr(11, line.find(':', 11) - 11));
        if (stages.back() == "retire") {
            ASSERT_EQ(stages.size(), 7u);
            EXPECT_EQ(stages[0], "fetch");
            EXPECT_EQ(stages[1], "decode");
            EXPECT_EQ(stages[2], "rename");
            EXPECT_EQ(stages[3], "dispatch");
            EXPECT_EQ(stages[4], "issue");
            EXPECT_EQ(stages[5], "complete");
            stages.clear();
            ++blocks;
        }
    }
    EXPECT_TRUE(stages.empty());
    EXPECT_GE(blocks, 20u);

    // Annotation surface: bypass levels, register-file reads, and the
    // mispredicting blbs's squash records all show up.
    EXPECT_NE(text.find("=BYP"), std::string::npos);
    EXPECT_NE(text.find("=RF"), std::string::npos);
    EXPECT_NE(text.find("SQUASHED@"), std::string::npos);
}

TEST(PipeView, SquashedInstructionsUseTickZero)
{
    // gem5 convention: a squashed instruction's unreached stages (and
    // its retire) are tick 0, which Konata renders as flushed.
    const Program p = goldenProgram();
    const MachineConfig cfg =
        MachineConfig::make(MachineKind::Baseline, 4);
    const std::string text = traceRun(cfg, p);
    std::istringstream is(text);
    std::string line;
    bool in_squashed = false;
    bool saw_squashed_retire0 = false;
    while (std::getline(is, line)) {
        if (line.find("SQUASHED@") != std::string::npos)
            in_squashed = true;
        if (line.rfind("O3PipeView:retire:", 0) == 0) {
            if (in_squashed) {
                EXPECT_EQ(line.rfind("O3PipeView:retire:0:", 0), 0u)
                    << line;
                saw_squashed_retire0 = true;
            }
            in_squashed = false;
        }
    }
    EXPECT_TRUE(saw_squashed_retire0);
}

TEST(PipeView, RingBufferKeepsLastN)
{
    const Program p = goldenProgram();
    const MachineConfig cfg =
        MachineConfig::make(MachineKind::RbFull, 4);
    trace::Tracer::Options topts = tracerOptions(cfg, p);
    topts.ringCap = 8;
    trace::Tracer tracer(topts);
    SimOptions opts;
    opts.tracer = &tracer;
    const SimResult r = simulate(cfg, p, opts);
    ASSERT_TRUE(r.halted);

    ASSERT_EQ(tracer.ring().size(), 8u);
    EXPECT_GT(tracer.finalized(), 8u);
    // Ring holds the *youngest* finalized instructions, oldest first.
    std::uint64_t prev = 0;
    for (const trace::TraceEntry &e : tracer.ring()) {
        EXPECT_GT(e.id, prev);
        prev = e.id;
    }
    EXPECT_EQ(prev, tracer.finalized());
    // The last block of the rendered ring is the halt.
    const std::string text = tracer.renderRing();
    EXPECT_NE(text.find("halt"), std::string::npos);
}

TEST(PipeView, EmissionIsInDispatchOrderAcrossSquashes)
{
    // Squash finalizes youngest-first while older instructions are
    // still in flight; the stream must still come out in trace-id
    // (dispatch) order, which is what O3PipeView consumers require.
    const Program p = goldenProgram();
    const MachineConfig cfg =
        MachineConfig::make(MachineKind::RbLimited, 4);
    const std::string text = traceRun(cfg, p);
    std::istringstream is(text);
    std::string line;
    std::uint64_t prev_id = 0;
    while (std::getline(is, line)) {
        if (line.rfind("O3PipeView:fetch:", 0) != 0)
            continue;
        // fetch line: O3PipeView:fetch:<tick>:0x<pc>:0:<id>:<text>
        std::istringstream ls(line);
        std::string tok;
        for (int i = 0; i < 5; ++i)
            std::getline(ls, tok, ':');
        std::getline(ls, tok, ':');
        const std::uint64_t id = std::stoull(tok);
        EXPECT_EQ(id, prev_id + 1) << line;
        prev_id = id;
    }
    EXPECT_GT(prev_id, 0u);
}

} // namespace
} // namespace rbsim
