/**
 * @file
 * Integration tests for the out-of-order core: every machine model runs
 * real programs to completion under lockstep co-simulation, and the
 * relative timing of the four machines matches the paper's reasoning
 * (dependent chains: Ideal < RB < Baseline latency; independent ops:
 * equal bandwidth).
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/builder.hh"
#include "sim/simulator.hh"

namespace rbsim
{
namespace
{

const std::vector<MachineKind> allKinds = {
    MachineKind::Baseline, MachineKind::RbLimited, MachineKind::RbFull,
    MachineKind::Ideal};

/** A long serial chain of dependent adds. */
Program
dependentAddChain(unsigned iters)
{
    CodeBuilder cb("dep-chain");
    cb.ldiq(R(1), 0);
    cb.ldiq(R(2), iters);
    const Label loop = cb.newLabel();
    cb.bind(loop);
    // 8 dependent adds per iteration.
    for (int i = 0; i < 8; ++i)
        cb.opi(Opcode::ADDQ, R(1), 3, R(1));
    cb.opi(Opcode::SUBQ, R(2), 1, R(2));
    cb.branch(Opcode::BNE, R(2), loop);
    cb.halt();
    return cb.finish();
}

/** Independent add streams (high ILP: 16 chains covers latency 2). */
Program
independentAdds(unsigned iters)
{
    CodeBuilder cb("indep");
    for (unsigned r = 1; r <= 16; ++r)
        cb.ldiq(R(r), r);
    cb.ldiq(R(17), iters);
    const Label loop = cb.newLabel();
    cb.bind(loop);
    for (unsigned r = 1; r <= 16; ++r)
        cb.opi(Opcode::ADDQ, R(r), 1, R(r));
    cb.opi(Opcode::SUBQ, R(17), 1, R(17));
    cb.branch(Opcode::BNE, R(17), loop);
    cb.halt();
    return cb.finish();
}

/**
 * Steady-state cycles per loop iteration: difference between a long and a
 * short run divided by the iteration delta. Removes cold-cache and
 * predictor-warmup constants.
 */
double
marginalCyclesPerIter(const MachineConfig &cfg,
                      Program (*make)(unsigned), unsigned lo, unsigned hi)
{
    const SimResult a = simulate(cfg, make(lo));
    const SimResult b = simulate(cfg, make(hi));
    return double(b.counter("core.cycles") - a.counter("core.cycles")) / double(hi - lo);
}

/** Mixed program exercising memory, branches, cmov, and logic. */
Program
mixedKernel()
{
    return assemble(R"(
        .name mixed
        .org 0x20000
        .quad 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
            ldiq r1, 0x20000
            ldiq r2, 16
            ldiq r3, 0          ; sum
            ldiq r4, 0          ; max
            ldiq r10, 0         ; xor-hash
        loop:
            ldq r5, 0(r1)
            addq r3, r5, r3
            cmplt r4, r5, r6
            cmovne r6, r5, r4
            xor r10, r5, r10
            sll r10, #1, r11
            srl r10, #63, r12
            bis r11, r12, r10   ; rotate left 1
            lda r1, 8(r1)
            subq r2, #1, r2
            bne r2, loop
            stq r3, 0(r1)
            stq r4, 8(r1)
            stq r10, 16(r1)
            halt
    )");
}

TEST(Core, AllMachinesRunMixedKernelWithCosim)
{
    const Program p = mixedKernel();
    for (MachineKind kind : allKinds) {
        for (unsigned width : {4u, 8u}) {
            const MachineConfig cfg = MachineConfig::make(kind, width);
            const SimResult r = simulate(cfg, p);
            EXPECT_TRUE(r.halted) << cfg.label << " w=" << width;
            EXPECT_GT(r.counter("cosim.checked"), 100u);
            EXPECT_EQ(r.counter("cosim.checked"), r.counter("core.retired"));
            // Architectural results (from committed memory, via the
            // reference which checked them): sum of digits of pi = 80.
        }
    }
}

TEST(Core, CommittedMemoryMatchesReference)
{
    const Program p = mixedKernel();
    const MachineConfig cfg = MachineConfig::make(MachineKind::RbFull, 8);
    OooCore core(cfg, p);
    ASSERT_TRUE(core.run(1'000'000));
    // 0x20000 + 16*8 = 0x20080: sum, max, hash.
    EXPECT_EQ(core.committedMem().read64(0x20080), 80u);
    EXPECT_EQ(core.committedMem().read64(0x20088), 9u);
}

TEST(Core, DependentChainLatencyOrdering)
{
    // On serial dependence chains the add latency is fully exposed:
    // Ideal (1-cycle) < RB (1-cycle + conversions off the critical path)
    // <= Baseline (2-cycle). RB-limited == RB-full here because
    // back-to-back BYP-1 forwarding is all the chain needs.
    double cyc[4];
    int i = 0;
    for (MachineKind kind : allKinds) {
        const MachineConfig cfg = MachineConfig::make(kind, 8);
        cyc[i++] = marginalCyclesPerIter(cfg, dependentAddChain, 300,
                                         1300);
    }
    const double base = cyc[0], rblim = cyc[1], rbfull = cyc[2],
                 ideal = cyc[3];
    // 9 chained adds/iteration: ~10.5 cycles on 1-cycle adders (cluster
    // crossings included), ~18.5 on 2-cycle adders.
    EXPECT_LT(ideal, base * 0.66); // 1-cycle vs 2-cycle chain
    EXPECT_LT(rbfull, base * 0.66);
    EXPECT_LE(ideal, rbfull + 0.01);
    EXPECT_NEAR(rblim, rbfull, rbfull * 0.05);
}

TEST(Core, IndependentOpsBandwidthBound)
{
    // With ample ILP all four machines provide the same bandwidth; IPC
    // differences shrink (paper's throughput-vs-latency point).
    double cpi_min = 1e9, cpi_max = 0;
    for (MachineKind kind : allKinds) {
        const MachineConfig cfg = MachineConfig::make(kind, 8);
        const double c =
            marginalCyclesPerIter(cfg, independentAdds, 400, 1400);
        cpi_min = std::min(cpi_min, c);
        cpi_max = std::max(cpi_max, c);
    }
    // 18 instructions per iteration, ample ILP: all machines sustain
    // several IPC and land close together.
    EXPECT_LT(cpi_max, 18.0 / 3.0);
    EXPECT_LT(cpi_max / cpi_min, 1.35);
}

TEST(Core, WiderMachineHelpsIndependentWork)
{
    const double c4 = marginalCyclesPerIter(
        MachineConfig::make(MachineKind::Ideal, 4), independentAdds, 400,
        1400);
    const double c8 = marginalCyclesPerIter(
        MachineConfig::make(MachineKind::Ideal, 8), independentAdds, 400,
        1400);
    EXPECT_LT(c8, c4 * 0.77);
}

TEST(Core, MispredictionRecoveryIsArchitecturallyClean)
{
    // Data-dependent branches on pseudo-random values: heavy
    // misprediction, co-simulation proves recovery correctness.
    CodeBuilder cb("branchy");
    cb.ldiq(R(1), 0x123456789abcdefull); // lcg state
    cb.ldiq(R(2), 2000);                 // iterations
    cb.ldiq(R(3), 0);                    // count
    cb.ldiq(R(6), 6364136223846793005ll);
    cb.ldiq(R(7), 1442695040888963407ll);
    const Label loop = cb.newLabel();
    const Label skip = cb.newLabel();
    cb.bind(loop);
    cb.op3(Opcode::MULQ, R(1), R(6), R(1));
    cb.op3(Opcode::ADDQ, R(1), R(7), R(1));
    cb.opi(Opcode::SRL, R(1), 13, R(4));
    cb.opi(Opcode::AND, R(4), 1, R(5));
    cb.branch(Opcode::BEQ, R(5), skip);
    cb.opi(Opcode::ADDQ, R(3), 1, R(3));
    cb.bind(skip);
    cb.opi(Opcode::SUBQ, R(2), 1, R(2));
    cb.branch(Opcode::BNE, R(2), loop);
    cb.halt();
    const Program p = cb.finish();

    for (MachineKind kind : allKinds) {
        const MachineConfig cfg = MachineConfig::make(kind, 8);
        const SimResult r = simulate(cfg, p);
        EXPECT_TRUE(r.halted) << cfg.label;
        EXPECT_GT(r.counter("core.condMispredicts"), 100u) << cfg.label;
        EXPECT_GT(r.counter("core.squashed"), 1000u);
    }
}

TEST(Core, StoreToLoadForwardingHappens)
{
    const Program p = assemble(R"(
            ldiq r1, 0x20000
            ldiq r2, 500
            ldiq r3, 7
        loop:
            stq r3, 0(r1)
            ldq r4, 0(r1)     ; same address: forward
            addq r4, r3, r3
            subq r2, #1, r2
            bne r2, loop
            halt
    )");
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 8);
    const SimResult r = simulate(cfg, p);
    EXPECT_TRUE(r.halted);
    EXPECT_GT(r.counter("core.loadForwards"), 100u);
}

TEST(Core, SubroutinesAndReturnPrediction)
{
    const Program p = assemble(R"(
        .entry main
        leaf:
            addq r1, r1, r1
            ret r26
        main:
            ldiq r1, 1
            ldiq r2, 300
        loop:
            bsr r26, leaf
            subq r2, #1, r2
            bne r2, loop
            halt
    )");
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 8);
    const SimResult r = simulate(cfg, p);
    EXPECT_TRUE(r.halted);
    // Returns predicted through the RAS: the only flushes allowed are
    // gshare warmup on the loop branch plus the exit misprediction.
    EXPECT_LT(r.counter("core.flushes"), 30u);
}

TEST(Core, JumpTableResolvesViaBtb)
{
    // A computed jump with a stable target: first encounter stalls fetch,
    // later ones hit the BTB.
    CodeBuilder cb("jtab");
    const Label loop = cb.newLabel();
    const Label target = cb.newLabel();
    const Label back = cb.newLabel();
    cb.ldiq(R(2), 200);
    cb.ldiq(R(8), 0);
    cb.bind(loop);
    cb.ldiq(R(4), 0); // patched below: target byte address
    cb.jmp(R(9), R(4));
    cb.bind(target);
    cb.opi(Opcode::ADDQ, R(8), 1, R(8));
    cb.bind(back);
    cb.opi(Opcode::SUBQ, R(2), 1, R(2));
    cb.branch(Opcode::BNE, R(2), loop);
    cb.halt();
    Program p = cb.finish();
    // Patch the LDIQ (3rd instruction, index 2... find it) to hold the
    // byte address of `target` (instruction index 4).
    for (Inst &inst : p.code) {
        if (inst.op == Opcode::LDIQ && inst.ra == 4)
            inst.imm64 = static_cast<std::int64_t>(p.byteAddrOf(4));
    }
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 8);
    const SimResult r = simulate(cfg, p);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.counter("core.retired"), r.counter("cosim.checked"));
    // After warmup the BTB predicts the jump; stalled resolutions stay
    // far below the 200 iterations.
    EXPECT_LT(r.counter("core.jmpFetchStalls"), 10u);
}

TEST(Core, RbMachinesExerciseRbDatapath)
{
    const Program p = mixedKernel();
    const SimResult rb =
        simulate(MachineConfig::make(MachineKind::RbFull, 8), p);
    EXPECT_GT(rb.counter("core.rbPathExecs"), rb.counter("core.retired") / 4);
    const SimResult ideal =
        simulate(MachineConfig::make(MachineKind::Ideal, 8), p);
    EXPECT_EQ(ideal.counter("core.rbPathExecs"), 0u);
}

TEST(Core, Table1TalliesArePlausible)
{
    const Program p = mixedKernel();
    const SimResult r =
        simulate(MachineConfig::make(MachineKind::Ideal, 8), p);
    std::uint64_t total = 0;
    for (std::uint64_t c : r.vec("core.table1"))
        total += c;
    EXPECT_EQ(total, r.counter("core.retired"));
    EXPECT_GT(r.vec("core.table1")[static_cast<unsigned>(Table1Row::MemAccess)],
              0u);
    EXPECT_GT(r.vec("core.table1")[static_cast<unsigned>(Table1Row::ArithRbRb)],
              0u);
}

TEST(Core, MinimumPipelineDepthRespected)
{
    // A single instruction plus HALT: the pipeline latency floor is 13
    // cycles (6 fetch/decode + 2 rename + 1 schedule + 2 RF + 1 EX + 1
    // retire).
    const Program p = assemble("addq r31, r31, r1\nhalt");
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 8);
    const SimResult r = simulate(cfg, p);
    EXPECT_TRUE(r.halted);
    // Cold caches: the very first fetch misses IL1 and L2 and pays the
    // ~110-cycle memory latency before the 13-stage minimum pipeline.
    EXPECT_GE(r.counter("core.cycles"), 13u);
    EXPECT_LT(r.counter("core.cycles"), 160u);
}

TEST(Core, SixteenWideExtensionRunsClean)
{
    // The width-scaling extension machine (4 clusters, scaled front
    // end): architecturally clean and faster than 8-wide on parallel
    // work.
    const Program p = independentAdds(400);
    const MachineConfig cfg16 =
        MachineConfig::make(MachineKind::RbFull, 16);
    EXPECT_EQ(cfg16.numClusters, 4u);
    const SimResult r16 = simulate(cfg16, p);
    EXPECT_TRUE(r16.halted);
    EXPECT_EQ(r16.counter("cosim.checked"), r16.counter("core.retired"));
    const SimResult r8 =
        simulate(MachineConfig::make(MachineKind::RbFull, 8), p);
    EXPECT_GT(r16.ipc(), r8.ipc());
}

TEST(Core, SimulationIsDeterministic)
{
    // Identical (config, program) pairs must produce identical cycle
    // counts and statistics: the simulator has no hidden global state.
    const Program p = mixedKernel();
    const MachineConfig cfg =
        MachineConfig::make(MachineKind::RbLimited, 8);
    const SimResult a = simulate(cfg, p);
    const SimResult b = simulate(cfg, p);
    // The registry snapshot covers every registered statistic, so one
    // comparison pins the complete machine state accounting.
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.counter("core.cycles"), b.counter("core.cycles"));
}

TEST(Core, BackToBackRunsDoNotLeakAcrossCores)
{
    // A fresh core starts cold: caches, predictor, and banks are per
    // instance, so two sequential constructions behave identically.
    const Program p = mixedKernel();
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 4);
    OooCore c1(cfg, p);
    ASSERT_TRUE(c1.run(1'000'000));
    OooCore c2(cfg, p);
    ASSERT_TRUE(c2.run(1'000'000));
    EXPECT_EQ(c1.stats().cycles, c2.stats().cycles);
    EXPECT_EQ(c1.memoryHierarchy().dl1().misses,
              c2.memoryHierarchy().dl1().misses);
}

} // namespace
} // namespace rbsim
