/**
 * @file
 * Unit tests for the memory substrate: cache tag arrays with LRU, the
 * banked hierarchy timing, and the load/store queue.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/lsq.hh"

namespace rbsim
{
namespace
{

CacheParams
smallCache()
{
    // 4 sets x 2 ways x 64B lines = 512B.
    return CacheParams{512, 2, 64, 2, 1, 1};
}

TEST(Cache, GeometryFromParams)
{
    CacheModel c(smallCache());
    EXPECT_EQ(c.numSets(), 4u);
    EXPECT_EQ(c.numWays(), 2u);
    EXPECT_EQ(c.lineBytes(), 64u);
}

TEST(Cache, MissThenHitAfterFill)
{
    CacheModel c(smallCache());
    EXPECT_FALSE(c.access(0x1000));
    c.fill(0x1000);
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1030)); // same line
    EXPECT_FALSE(c.access(0x1040)); // next line
    EXPECT_EQ(c.accesses, 4u);
    EXPECT_EQ(c.misses, 2u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    CacheModel c(smallCache());
    // Three lines mapping to set 0 (set stride = 4 lines = 256B).
    const Addr a = 0x0000, b = 0x0100, d = 0x0200;
    c.fill(a);
    c.fill(b);
    EXPECT_TRUE(c.access(a)); // a is now MRU
    c.fill(d);                // evicts b
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, ProbeDoesNotTouchState)
{
    CacheModel c(smallCache());
    c.fill(0x0000);
    c.fill(0x0100);
    // Probing `a` must NOT refresh its recency.
    EXPECT_TRUE(c.probe(0x0000));
    c.fill(0x0200); // evicts 0x0000 (oldest by use)
    EXPECT_FALSE(c.probe(0x0000));
}

TEST(Cache, ResetClearsEverything)
{
    CacheModel c(smallCache());
    c.fill(0x1000);
    c.access(0x1000);
    c.reset();
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_EQ(c.accesses, 0u);
}

TEST(Cache, RandomizedAgainstReferenceLru)
{
    // Property: the tag array behaves exactly like a per-set LRU list.
    CacheModel c(smallCache());
    std::vector<std::vector<Addr>> ref(4); // per-set MRU-first line list
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        const Addr line = rng.below(32); // 32 distinct lines
        const Addr addr = line * 64;
        const unsigned set = static_cast<unsigned>(line & 3);
        auto &lru = ref[set];
        const auto it = std::find(lru.begin(), lru.end(), line);
        const bool ref_hit = it != lru.end();
        const bool hit = c.access(addr);
        ASSERT_EQ(hit, ref_hit) << "line " << line << " iter " << i;
        if (ref_hit) {
            lru.erase(it);
            lru.insert(lru.begin(), line);
        } else {
            c.fill(addr);
            lru.insert(lru.begin(), line);
            if (lru.size() > 2)
                lru.pop_back();
        }
    }
}

TEST(Hierarchy, HitServedAtL1Latency)
{
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 8);
    MemHierarchy mh(cfg);
    const Cycle first = mh.dataRead(0x1000, 100);
    EXPECT_GT(first, 100u + cfg.dl1.latency); // cold: all the way out
    const Cycle second = mh.dataRead(0x1000, first + 1);
    EXPECT_EQ(second, first + 1 + cfg.dl1.latency);
}

TEST(Hierarchy, ColdMissPaysL2PlusMemory)
{
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 8);
    MemHierarchy mh(cfg);
    const Cycle ready = mh.dataRead(0x40000, 0);
    // dl1 lat + l2 lat + memory lat, give or take bank scheduling.
    EXPECT_GE(ready, cfg.dl1.latency + cfg.l2.latency + cfg.memLatency);
    EXPECT_LE(ready,
              cfg.dl1.latency + cfg.l2.latency + cfg.memLatency + 10);
    EXPECT_EQ(mh.memAccesses, 1u);
}

TEST(Hierarchy, L2HitAfterDl1Eviction)
{
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 8);
    MemHierarchy mh(cfg);
    // Fill a line, then blow it out of the 8KB dl1 with a 16KB sweep.
    Cycle t = mh.dataRead(0x0, 0);
    for (Addr a = 0x100000; a < 0x104000; a += 64)
        t = mh.dataRead(a, t + 1);
    const std::uint64_t mem_before = mh.memAccesses;
    const Cycle ready = mh.dataRead(0x0, t + 1);
    // Must come from L2, not memory.
    EXPECT_EQ(mh.memAccesses, mem_before);
    EXPECT_GE(ready, t + 1 + cfg.dl1.latency + cfg.l2.latency);
    EXPECT_LE(ready, t + 1 + cfg.dl1.latency + cfg.l2.latency +
                         cfg.l2.bankBusy);
}

TEST(Hierarchy, BankContentionSerializesSameBank)
{
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 8);
    MemHierarchy mh(cfg);
    // Two cold misses to lines in the same L2 bank and same memory bank,
    // issued the same cycle: the second is delayed by bank busy time.
    const Addr a = 0x200000;
    const Addr b = a + 64 * cfg.l2.banks * cfg.memBanks;
    const Cycle ra = mh.dataRead(a, 0);
    const Cycle rb = mh.dataRead(b, 0);
    EXPECT_GE(rb, ra + cfg.memBankBusy);
}

TEST(Hierarchy, DifferentBanksProceedInParallel)
{
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 8);
    MemHierarchy mh(cfg);
    const Addr a = 0x200000;
    const Addr b = a + 64; // adjacent line: different L2 and mem bank
    const Cycle ra = mh.dataRead(a, 0);
    const Cycle rb = mh.dataRead(b, 0);
    EXPECT_LE(rb, ra + cfg.l2.bankBusy + 1);
}

TEST(Hierarchy, WriteTouchWarmsTagsWithoutStalling)
{
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 8);
    MemHierarchy mh(cfg);
    mh.dataWriteTouch(0x3000, 0);
    const Cycle ready = mh.dataRead(0x3000, 1);
    EXPECT_EQ(ready, 1 + cfg.dl1.latency);
}

// ------------------------------------------------------------------ LSQ

TEST(Lsq, InsertAndCapacity)
{
    LoadStoreQueue q(2);
    EXPECT_TRUE(q.hasSpace());
    q.insert(1, false);
    q.insert(2, true);
    EXPECT_FALSE(q.hasSpace());
    q.retire(1);
    EXPECT_TRUE(q.hasSpace());
}

TEST(Lsq, LoadBlockedUntilOlderStoreAddressKnown)
{
    LoadStoreQueue q(8);
    q.insert(1, true);  // store, address unknown
    q.insert(2, false); // load
    EXPECT_FALSE(q.olderStoreAddrsKnown(2));
    q.setAddress(1, 0x1000, 8);
    EXPECT_TRUE(q.olderStoreAddrsKnown(2));
}

TEST(Lsq, ExactForwardNeedsData)
{
    LoadStoreQueue q(8);
    q.insert(1, true);
    q.insert(2, false);
    q.setAddress(1, 0x1000, 8);
    // Address known but data not yet: the load must wait.
    LoadSearch s = q.searchForLoad(2, 0x1000, 8);
    EXPECT_FALSE(s.mayIssue);
    q.setStoreData(1, 0xabcd);
    s = q.searchForLoad(2, 0x1000, 8);
    EXPECT_TRUE(s.mayIssue);
    EXPECT_TRUE(s.forwarded);
    EXPECT_EQ(s.data, 0xabcdu);
}

TEST(Lsq, DisjointStoreDoesNotBlock)
{
    LoadStoreQueue q(8);
    q.insert(1, true);
    q.insert(2, false);
    q.setAddress(1, 0x2000, 8); // data never set; disjoint anyway
    const LoadSearch s = q.searchForLoad(2, 0x1000, 8);
    EXPECT_TRUE(s.mayIssue);
    EXPECT_FALSE(s.forwarded);
}

TEST(Lsq, YoungestContainingStoreWins)
{
    LoadStoreQueue q(8);
    q.insert(1, true);
    q.insert(2, true);
    q.insert(3, false);
    q.setAddress(1, 0x1000, 8);
    q.setStoreData(1, 111);
    q.setAddress(2, 0x1000, 8);
    q.setStoreData(2, 222);
    const LoadSearch s = q.searchForLoad(3, 0x1000, 8);
    ASSERT_TRUE(s.forwarded);
    EXPECT_EQ(s.data, 222u);
}

TEST(Lsq, SubwordForwardFromContainingStore)
{
    LoadStoreQueue q(8);
    q.insert(1, true);
    q.insert(2, false);
    q.setAddress(1, 0x1000, 8);
    q.setStoreData(1, 0x1122334455667788ull);
    const LoadSearch s = q.searchForLoad(2, 0x1004, 4);
    ASSERT_TRUE(s.forwarded);
    EXPECT_EQ(s.data, 0x11223344u);
}

TEST(Lsq, PartialOverlapDelaysLoad)
{
    LoadStoreQueue q(8);
    q.insert(1, true);
    q.insert(2, false);
    q.setAddress(1, 0x1004, 4); // 4B store inside the load's 8B
    q.setStoreData(1, 0xffff);
    const LoadSearch s = q.searchForLoad(2, 0x1000, 8);
    EXPECT_FALSE(s.mayIssue);
}

TEST(Lsq, YoungerStoresAreIgnored)
{
    LoadStoreQueue q(8);
    q.insert(1, false); // load
    q.insert(2, true);  // younger store, same address
    q.setAddress(2, 0x1000, 8);
    q.setStoreData(2, 999);
    const LoadSearch s = q.searchForLoad(1, 0x1000, 8);
    EXPECT_TRUE(s.mayIssue);
    EXPECT_FALSE(s.forwarded);
}

TEST(Lsq, SquashDropsYoungEntries)
{
    LoadStoreQueue q(8);
    q.insert(1, true);
    q.insert(2, false);
    q.insert(3, true);
    q.squashAfter(1);
    EXPECT_EQ(q.size(), 1u);
    q.insert(2, false); // re-dispatch after squash reuses seq numbers
    EXPECT_EQ(q.size(), 2u);
}

TEST(Lsq, RetirePopsInOrder)
{
    LoadStoreQueue q(8);
    q.insert(1, true);
    q.insert(2, false);
    q.setAddress(1, 0x8, 8);
    q.setStoreData(1, 5);
    const LsqEntry e = q.retire(1);
    EXPECT_TRUE(e.isStore);
    EXPECT_EQ(e.data, 5u);
    q.retire(2);
    EXPECT_EQ(q.size(), 0u);
}

} // namespace
} // namespace rbsim
