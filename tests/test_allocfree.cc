/**
 * @file
 * The zero-allocation hot-path invariant (docs/PERFORMANCE.md): after a
 * warm-up period, a steady-state simulated cycle performs no heap
 * allocations — all hot structures (ROB/LSQ rings, front pipe, waiter
 * pool, wakeup heap storage, fetch buffer) were sized up front. This
 * binary links rbsim-allochook, the counting operator new replacement.
 */

#include <gtest/gtest.h>

#include "common/alloccount.hh"
#include "core/core.hh"
#include "isa/builder.hh"

namespace rbsim
{
namespace
{

/**
 * A long-running loop mixing the hot paths: dependent ALU work, stores,
 * forwarded loads, and a data-dependent branch that mispredicts (so the
 * flush/squash path runs in steady state too).
 */
Program
steadyWorkload(unsigned iters)
{
    CodeBuilder cb("steady");
    cb.ldiq(R(1), 0x1234);
    cb.ldiq(R(2), 7);
    cb.ldiq(R(21), 0x40000);
    cb.ldiq(R(22), iters);
    const Label loop = cb.newLabel();
    const Label skip = cb.newLabel();
    cb.bind(loop);
    cb.store(Opcode::STQ, R(1), 0, R(21));
    cb.load(Opcode::LDQ, R(3), 0, R(21)); // forwarded
    cb.opi(Opcode::ADDQ, R(3), 5, R(1));
    // Multiply included deliberately: the RB tree multiplier once built
    // its partial-product list on the heap per operation.
    cb.op3(Opcode::MULQ, R(1), R(2), R(4));
    cb.store(Opcode::STL, R(4), 8, R(21));
    cb.load(Opcode::LDL, R(5), 8, R(21));
    // Data-dependent branch (alternates): steady mispredict traffic.
    cb.opi(Opcode::AND, R(22), 1, R(6));
    cb.branch(Opcode::BEQ, R(6), skip);
    cb.op3(Opcode::ADDQ, R(5), R(4), R(2));
    cb.bind(skip);
    cb.opi(Opcode::SUBQ, R(22), 1, R(22));
    cb.branch(Opcode::BNE, R(22), loop);
    cb.halt();
    return cb.finish();
}

void
expectZeroSteadyStateAllocs(MachineConfig cfg)
{
    ASSERT_TRUE(alloccount::hooked())
        << "test_allocfree must link rbsim-allochook";
    const Program prog = steadyWorkload(2'000'000);
    OooCore core(cfg, prog);

    // Warm up: first touches of MemImage pages, container growth to
    // high-water marks, lazily-built tables.
    for (int i = 0; i < 50'000; ++i)
        core.cycle();
    ASSERT_FALSE(core.halted());

    alloccount::enable(true);
    const std::uint64_t before = alloccount::threadCount();
    for (int i = 0; i < 50'000; ++i)
        core.cycle();
    const std::uint64_t delta = alloccount::threadCount() - before;
    alloccount::enable(false);
    ASSERT_FALSE(core.halted());
    EXPECT_EQ(delta, 0u) << cfg.label << ": " << delta
                         << " heap allocations in 50k steady cycles";
}

TEST(AllocFree, WakeupSchedulerSteadyState)
{
    expectZeroSteadyStateAllocs(
        MachineConfig::make(MachineKind::RbFull, 8));
}

TEST(AllocFree, PolledSchedulerSteadyState)
{
    MachineConfig cfg = MachineConfig::make(MachineKind::Baseline, 4);
    cfg.polledScheduler = true;
    expectZeroSteadyStateAllocs(cfg);
}

} // namespace
} // namespace rbsim
