/**
 * @file
 * The zero-allocation hot-path invariant (docs/PERFORMANCE.md): after a
 * warm-up period, a steady-state simulated cycle performs no heap
 * allocations — all hot structures (ROB/LSQ rings, front pipe, waiter
 * pool, wakeup heap storage, fetch buffer) were sized up front. This
 * binary links rbsim-allochook, the counting operator new replacement.
 */

#include <gtest/gtest.h>

#include "common/alloccount.hh"
#include "common/rng.hh"
#include "core/core.hh"
#include "isa/builder.hh"
#include "rb/simd/rb_batch.hh"

namespace rbsim
{
namespace
{

/**
 * A long-running loop mixing the hot paths: dependent ALU work, stores,
 * forwarded loads, and a data-dependent branch that mispredicts (so the
 * flush/squash path runs in steady state too).
 */
Program
steadyWorkload(unsigned iters)
{
    CodeBuilder cb("steady");
    cb.ldiq(R(1), 0x1234);
    cb.ldiq(R(2), 7);
    cb.ldiq(R(21), 0x40000);
    cb.ldiq(R(22), iters);
    const Label loop = cb.newLabel();
    const Label skip = cb.newLabel();
    cb.bind(loop);
    cb.store(Opcode::STQ, R(1), 0, R(21));
    cb.load(Opcode::LDQ, R(3), 0, R(21)); // forwarded
    cb.opi(Opcode::ADDQ, R(3), 5, R(1));
    // Multiply included deliberately: the RB tree multiplier once built
    // its partial-product list on the heap per operation.
    cb.op3(Opcode::MULQ, R(1), R(2), R(4));
    cb.store(Opcode::STL, R(4), 8, R(21));
    cb.load(Opcode::LDL, R(5), 8, R(21));
    // Data-dependent branch (alternates): steady mispredict traffic.
    cb.opi(Opcode::AND, R(22), 1, R(6));
    cb.branch(Opcode::BEQ, R(6), skip);
    cb.op3(Opcode::ADDQ, R(5), R(4), R(2));
    cb.bind(skip);
    cb.opi(Opcode::SUBQ, R(22), 1, R(22));
    cb.branch(Opcode::BNE, R(22), loop);
    cb.halt();
    return cb.finish();
}

void
expectZeroSteadyStateAllocs(MachineConfig cfg)
{
    ASSERT_TRUE(alloccount::hooked())
        << "test_allocfree must link rbsim-allochook";
    const Program prog = steadyWorkload(2'000'000);
    OooCore core(cfg, prog);

    // Warm up: first touches of MemImage pages, container growth to
    // high-water marks, lazily-built tables.
    for (int i = 0; i < 50'000; ++i)
        core.cycle();
    ASSERT_FALSE(core.halted());

    alloccount::enable(true);
    const std::uint64_t before = alloccount::threadCount();
    for (int i = 0; i < 50'000; ++i)
        core.cycle();
    const std::uint64_t delta = alloccount::threadCount() - before;
    alloccount::enable(false);
    ASSERT_FALSE(core.halted());
    EXPECT_EQ(delta, 0u) << cfg.label << ": " << delta
                         << " heap allocations in 50k steady cycles";
}

TEST(AllocFree, WakeupSchedulerSteadyState)
{
    expectZeroSteadyStateAllocs(
        MachineConfig::make(MachineKind::RbFull, 8));
}

TEST(AllocFree, PolledSchedulerSteadyState)
{
    MachineConfig cfg = MachineConfig::make(MachineKind::Baseline, 4);
    cfg.polledScheduler = true;
    expectZeroSteadyStateAllocs(cfg);
}

TEST(AllocFree, RbBatchPushRunClearAllocatesNothing)
{
    // The SoA batch the execute stage reuses every cycle: capacity is
    // fixed at construction, clear() keeps storage, and run() is one
    // kernel call over preallocated arrays — none of it may touch the
    // heap once built.
    ASSERT_TRUE(alloccount::hooked())
        << "test_allocfree must link rbsim-allochook";
    Rng rng(7);
    simd::RbBatch batch(64);
    const simd::KernelOps &k = simd::kernels(); // resolve dispatch first

    alloccount::enable(true);
    const std::uint64_t before = alloccount::threadCount();
    std::uint64_t sink = 0;
    for (int iter = 0; iter < 10'000; ++iter) {
        batch.clear();
        for (std::size_t i = 0; i < batch.capacity(); ++i) {
            const std::uint64_t ap = rng.next();
            const RbNum a(ap, rng.next() & ~ap);
            const std::uint64_t bp = rng.next();
            const RbNum b(bp, rng.next() & ~bp);
            batch.pushScaledAdd(a, static_cast<unsigned>(i & 3), b);
        }
        batch.run(k);
        for (std::size_t i = 0; i < batch.size(); ++i)
            sink ^= batch.sum(i).plus();
    }
    const std::uint64_t delta = alloccount::threadCount() - before;
    alloccount::enable(false);
    EXPECT_NE(sink, std::uint64_t{0xdeadbeef}); // keep the loop alive
    EXPECT_EQ(delta, 0u)
        << delta << " heap allocations in 10k batch evaluations";
}

} // namespace
} // namespace rbsim
