/**
 * @file
 * Unit tests for the redundant binary number representation (paper §3.1,
 * §3.2): encoding invariants, hardwired TC->RB conversion, value queries.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "rb/rbnum.hh"

namespace rbsim
{
namespace
{

TEST(RbNum, DefaultIsZero)
{
    RbNum x;
    EXPECT_TRUE(x.isZero());
    EXPECT_EQ(x.toTc(), 0u);
    EXPECT_FALSE(x.signNegative());
    EXPECT_FALSE(x.lsbSet());
}

TEST(RbNum, PaperExampleValueThree)
{
    // <0,1,0,-1> represents 2^2 - 2^0 = 3 (paper section 3.1).
    RbNum x(0b0100, 0b0001);
    EXPECT_EQ(x.toTc(), 3u);
    EXPECT_EQ(x.digit(2), Digit::Plus);
    EXPECT_EQ(x.digit(0), Digit::Minus);
    EXPECT_EQ(x.digit(1), Digit::Zero);

    // Three is also <0,0,1,1>: redundancy means multiple representations.
    RbNum y(0b0011, 0);
    EXPECT_EQ(y.toTc(), 3u);
    EXPECT_FALSE(x == y); // different representations
}

TEST(RbNum, FromTcPositive)
{
    const RbNum x = RbNum::fromTc(42);
    EXPECT_EQ(x.toTc(), 42u);
    EXPECT_EQ(x.minus(), 0u); // no MSB, purely positive digits
    EXPECT_FALSE(x.signNegative());
}

TEST(RbNum, FromTcNegativePutsSignBitInMinusPlane)
{
    const RbNum x = RbNum::fromTc(static_cast<Word>(-1));
    EXPECT_EQ(x.toTc(), static_cast<Word>(-1));
    // MSB of the TC value lands in the negative plane (paper section 3.2).
    EXPECT_EQ(x.minus(), std::uint64_t{1} << 63);
    EXPECT_EQ(x.plus(), 0x7fffffffffffffffull);
    EXPECT_TRUE(x.signNegative());
}

TEST(RbNum, FromTcRoundTripsRandomValues)
{
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        const Word w = rng.next();
        const RbNum x = RbNum::fromTc(w);
        EXPECT_EQ(x.toTc(), w);
        EXPECT_EQ((x.plus() & x.minus()), 0u);
    }
}

TEST(RbNum, FromTcSignScanMatchesTcSign)
{
    Rng rng(2);
    for (int i = 0; i < 10000; ++i) {
        const Word w = rng.next();
        const RbNum x = RbNum::fromTc(w);
        EXPECT_EQ(x.signNegative(), static_cast<SWord>(w) < 0) << w;
    }
}

TEST(RbNum, FromTcLongKeepsLongwordSign)
{
    const RbNum x = RbNum::fromTcLong(0xffffffffu); // -1 as a longword
    // Bit 31 is hardwired to the negative plane of digit 31 (section 3.6).
    EXPECT_EQ(x.minus(), 0x80000000ull);
    EXPECT_EQ(x.plus(), 0x7fffffffull);
    EXPECT_TRUE(x.signNegative());
    // Value of the 32-digit number is -1.
    EXPECT_EQ(static_cast<SWord>(x.toTc()), -1);
}

TEST(RbNum, DigitSetAndGet)
{
    RbNum x;
    x.setDigit(5, Digit::Minus);
    EXPECT_EQ(x.digit(5), Digit::Minus);
    x.setDigit(5, Digit::Plus);
    EXPECT_EQ(x.digit(5), Digit::Plus);
    x.setDigit(5, Digit::Zero);
    EXPECT_TRUE(x.isZero());
}

TEST(RbNum, LsbSetIsValueOddness)
{
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const Word w = rng.next();
        EXPECT_EQ(RbNum::fromTc(w).lsbSet(), (w & 1) != 0);
    }
    // Also with a mixed representation: <1,-1> has value 1, odd.
    RbNum x(0b10, 0b01);
    EXPECT_EQ(x.toTc(), 1u);
    EXPECT_TRUE(x.lsbSet());
}

TEST(RbNum, TrailingZeroDigitsEqualsCttzOfValue)
{
    Rng rng(4);
    for (int i = 0; i < 2000; ++i) {
        const Word w = rng.next() << rng.below(20);
        const RbNum x = RbNum::fromTc(w);
        const unsigned expect =
            w == 0 ? 64u : static_cast<unsigned>(__builtin_ctzll(w));
        EXPECT_EQ(x.trailingZeroDigits(), expect);
    }
}

TEST(RbNum, ToStringShowsDigits)
{
    RbNum x(0b0100, 0b0001);
    EXPECT_EQ(x.toString(4), "<0,1,0,-1>");
}

TEST(RbNum, ToStringExactFormatPinned)
{
    // The format is part of trace/debug output: digits printed from
    // position ndigits-1 down to 0, "-1" for a minus digit, commas
    // between digits, the whole wrapped in angle brackets — no spaces,
    // no sign prefix other than the embedded "-1".
    EXPECT_EQ(RbNum(0, 0).toString(1), "<0>");
    EXPECT_EQ(RbNum(1, 0).toString(1), "<1>");
    EXPECT_EQ(RbNum(0, 1).toString(1), "<-1>");
    EXPECT_EQ(RbNum(0b10, 0b01).toString(2), "<1,-1>");
    EXPECT_EQ(RbNum(0, 0).toString(3), "<0,0,0>");
    // Digits above ndigits-1 are simply not printed.
    EXPECT_EQ(RbNum(0b1000, 0b0001).toString(2), "<0,-1>");
    // Full-width render: 64 digits, 63 commas, the "-1" at the top.
    const RbNum top(0, 1ull << 63);
    const std::string s = top.toString(64);
    EXPECT_EQ(s.size(), 2 + 64 + 1 + 63);
    EXPECT_EQ(s.substr(0, 4), "<-1,");
    EXPECT_EQ(s.back(), '>');
}

TEST(RbNum, ZeroTestIsAllDigitsZero)
{
    // Disjoint planes mean value zero implies every digit zero, so the
    // hardware zero test is a wide OR (paper section 3.6).
    Rng rng(5);
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t p = rng.next();
        std::uint64_t m = rng.next() & ~p;
        RbNum x(p, m);
        EXPECT_EQ(x.isZero(), x.toTc() == 0 && p == m);
        if (x.toTc() == 0) {
            EXPECT_TRUE(p == 0 && m == 0);
        }
    }
}

} // namespace
} // namespace rbsim
