/**
 * @file
 * Unit tests for the core's bookkeeping structures: rename table with
 * walk-based recovery, ROB, scoreboard, scheduler bank, and the machine
 * configuration factory.
 */

#include <gtest/gtest.h>

#include "core/machine_config.hh"
#include "core/rename.hh"
#include "core/rob.hh"
#include "core/scheduler.hh"
#include "core/scoreboard.hh"

namespace rbsim
{
namespace
{

TEST(Rename, InitialIdentityMapping)
{
    RenameTable rt(64);
    for (unsigned r = 0; r < numArchRegs; ++r)
        EXPECT_EQ(rt.lookup(r), r);
    EXPECT_EQ(rt.freeCount(), 64u - numArchRegs);
}

TEST(Rename, AllocateRemapsAndReportsPrevious)
{
    RenameTable rt(64);
    const auto [fresh, prev] = rt.allocate(5);
    EXPECT_EQ(prev, 5u);
    EXPECT_NE(fresh, 5u);
    EXPECT_EQ(rt.lookup(5), fresh);
}

TEST(Rename, UndoRestoresInReverseOrder)
{
    RenameTable rt(64);
    const auto [p1, prev1] = rt.allocate(3);
    const auto [p2, prev2] = rt.allocate(3);
    const auto [p3, prev3] = rt.allocate(7);
    EXPECT_EQ(prev2, p1);
    // Squash walk: youngest first.
    rt.undo(7, p3, prev3);
    rt.undo(3, p2, prev2);
    rt.undo(3, p1, prev1);
    EXPECT_EQ(rt.lookup(3), 3u);
    EXPECT_EQ(rt.lookup(7), 7u);
    EXPECT_EQ(rt.freeCount(), 64u - numArchRegs);
}

TEST(Rename, ReleaseRecyclesPreviousMapping)
{
    RenameTable rt(34); // only two spare registers
    const auto [p1, prev1] = rt.allocate(1);
    const auto [p2, prev2] = rt.allocate(1);
    (void)p2;
    EXPECT_FALSE(rt.hasFree());
    rt.release(prev1); // retire of the first writer frees arch reg 1
    EXPECT_TRUE(rt.hasFree());
    const auto [p3, prev3] = rt.allocate(2);
    (void)prev3;
    EXPECT_EQ(p3, prev1);
    (void)p1;
}

TEST(Rob, AllocGetRetire)
{
    Rob rob(4);
    rob.alloc(10).pcIndex = 100;
    rob.alloc(11).pcIndex = 101;
    EXPECT_EQ(rob.get(10).pcIndex, 100u);
    EXPECT_EQ(rob.get(11).pcIndex, 101u);
    EXPECT_TRUE(rob.contains(10));
    EXPECT_FALSE(rob.contains(12));
    rob.retireHead();
    EXPECT_FALSE(rob.contains(10));
    EXPECT_EQ(rob.head().seq, 11u);
}

TEST(Rob, SquashWalksYoungestFirst)
{
    Rob rob(8);
    for (std::uint64_t s = 1; s <= 5; ++s)
        rob.alloc(s);
    std::vector<std::uint64_t> undone;
    rob.squashAfter(2, [&undone](RobEntry &e) { undone.push_back(e.seq); });
    EXPECT_EQ(undone, (std::vector<std::uint64_t>{5, 4, 3}));
    EXPECT_EQ(rob.size(), 2u);
    EXPECT_TRUE(rob.contains(2));
}

TEST(Rob, CapacityTracking)
{
    Rob rob(2);
    rob.alloc(1);
    EXPECT_TRUE(rob.hasSpace());
    rob.alloc(2);
    EXPECT_FALSE(rob.hasSpace());
}

TEST(Scoreboard, PendingThenProducedThenCleared)
{
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 4);
    Scoreboard sb(64);
    // Fresh registers are always-available.
    EXPECT_TRUE(operandAvail(cfg, sb.of(10), false, 0, 0));
    sb.markPending(10);
    EXPECT_FALSE(operandAvail(cfg, sb.of(10), false, 0, 1000));
    sb.produce(10, ProdAvail::make(50, LatencyPair{1, 1}, 3, 0));
    EXPECT_FALSE(operandAvail(cfg, sb.of(10), false, 0, 50));
    EXPECT_TRUE(operandAvail(cfg, sb.of(10), false, 0, 51));
    sb.clear(10);
    EXPECT_TRUE(operandAvail(cfg, sb.of(10), false, 0, 0));
}

TEST(Scoreboard, BypassCaseClassification)
{
    EXPECT_EQ(classifyBypass(false, true), BypassCase::TcToTc);
    EXPECT_EQ(classifyBypass(false, false), BypassCase::TcToRb);
    EXPECT_EQ(classifyBypass(true, false), BypassCase::RbToRb);
    EXPECT_EQ(classifyBypass(true, true), BypassCase::RbToTc);
}

TEST(Scheduler, RoundRobinPairSteering)
{
    SchedulerBank bank(4, 32);
    std::vector<unsigned> targets;
    for (int i = 0; i < 8; ++i) {
        targets.push_back(bank.steerTarget());
        bank.advanceSteering();
    }
    EXPECT_EQ(targets,
              (std::vector<unsigned>{0, 0, 1, 1, 2, 2, 3, 3}));
    EXPECT_EQ(bank.steerTarget(), 0u); // wraps
}

TEST(Scheduler, SelectsOldestFirstUpToWidth)
{
    SchedulerBank bank(1, 8, 2);
    for (std::uint64_t s = 1; s <= 5; ++s)
        bank.insert(0, s);
    std::vector<std::uint64_t> issued;
    bank.selectCycle([](std::uint64_t, unsigned) { return true; },
                     [&issued](std::uint64_t s, unsigned) {
                         issued.push_back(s);
                     });
    EXPECT_EQ(issued, (std::vector<std::uint64_t>{1, 2}));
    EXPECT_EQ(bank.occupancyOf(0), 3u);
}

TEST(Scheduler, SkipsNotReadyEntries)
{
    SchedulerBank bank(1, 8, 2);
    for (std::uint64_t s = 1; s <= 4; ++s)
        bank.insert(0, s);
    std::vector<std::uint64_t> issued;
    bank.selectCycle(
        [](std::uint64_t s, unsigned) { return s % 2 == 0; },
        [&issued](std::uint64_t s, unsigned) { issued.push_back(s); });
    EXPECT_EQ(issued, (std::vector<std::uint64_t>{2, 4}));
    EXPECT_EQ(bank.occupancyOf(0), 2u);
}

TEST(Scheduler, SquashRemovesYoungEntries)
{
    SchedulerBank bank(2, 8);
    bank.insert(0, 1);
    bank.insert(1, 2);
    bank.insert(0, 3);
    bank.squashAfter(1);
    EXPECT_EQ(bank.occupancy(), 1u);
    EXPECT_EQ(bank.occupancyOf(0), 1u);
}

TEST(Scheduler, CapacityPerScheduler)
{
    SchedulerBank bank(2, 2);
    bank.insert(0, 1);
    bank.insert(0, 2);
    EXPECT_FALSE(bank.hasSpace(0));
    EXPECT_TRUE(bank.hasSpace(1));
}

TEST(MachineConfig, PaperGeometry)
{
    const MachineConfig m8 = MachineConfig::make(MachineKind::Ideal, 8);
    EXPECT_EQ(m8.numSchedulers, 4u);
    EXPECT_EQ(m8.schedEntries, 32u);
    EXPECT_EQ(m8.numClusters, 2u);
    const MachineConfig m4 =
        MachineConfig::make(MachineKind::Baseline, 4);
    EXPECT_EQ(m4.numSchedulers, 2u);
    EXPECT_EQ(m4.schedEntries, 64u);
    EXPECT_EQ(m4.numClusters, 1u);
    // The window is 128 entries in both.
    EXPECT_EQ(m8.numSchedulers * m8.schedEntries, 128u);
    EXPECT_EQ(m4.numSchedulers * m4.schedEntries, 128u);
}

TEST(MachineConfig, Table3Latencies)
{
    const MachineConfig base =
        MachineConfig::make(MachineKind::Baseline, 8);
    const MachineConfig rb = MachineConfig::make(MachineKind::RbFull, 8);
    const MachineConfig ideal = MachineConfig::make(MachineKind::Ideal, 8);

    EXPECT_EQ(base.latencyOf(OpClass::IntArith).early, 2u);
    EXPECT_EQ(rb.latencyOf(OpClass::IntArith).early, 1u);
    EXPECT_EQ(rb.latencyOf(OpClass::IntArith).late, 3u);
    EXPECT_EQ(ideal.latencyOf(OpClass::IntArith).early, 1u);

    EXPECT_EQ(rb.latencyOf(OpClass::ShiftLeft).early, 3u);
    EXPECT_EQ(rb.latencyOf(OpClass::ShiftLeft).late, 5u);
    EXPECT_EQ(rb.latencyOf(OpClass::ShiftRight).late, 3u);
    EXPECT_EQ(rb.latencyOf(OpClass::IntMul).late, 10u);
    EXPECT_EQ(rb.latencyOf(OpClass::FpDiv).early, 32u);

    EXPECT_EQ(base.storeCompleteLat, 1u);
    EXPECT_EQ(rb.storeCompleteLat, 3u);
    EXPECT_EQ(base.branchResolveLat(), 2u);
    EXPECT_EQ(rb.branchResolveLat(), 1u);

    EXPECT_TRUE(rb.isDualFormat(OpClass::IntArith));
    EXPECT_FALSE(rb.isDualFormat(OpClass::IntLogical));
    EXPECT_FALSE(ideal.isDualFormat(OpClass::IntArith));
}

TEST(MachineConfig, IdealLimitedLabels)
{
    EXPECT_EQ(MachineConfig::makeIdealLimited(8, 0b111).label,
              "Ideal (full)");
    EXPECT_EQ(MachineConfig::makeIdealLimited(8, 0b110).label,
              "Ideal No-1");
    EXPECT_EQ(MachineConfig::makeIdealLimited(8, 0b100).label,
              "Ideal No-1,2");
    EXPECT_EQ(MachineConfig::makeIdealLimited(8, 0b001).label,
              "Ideal No-2,3");
}

} // namespace
} // namespace rbsim
