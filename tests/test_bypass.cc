/**
 * @file
 * Tests for the bypass availability model (paper §4.1, §4.2): full
 * networks, the RB-limited network's holes, Figure 14's level-removal
 * variants, cross-cluster delay, the Figure 5/7 pipeline diagrams, and
 * the Figure 8 shift-register pattern equivalence.
 */

#include <gtest/gtest.h>

#include "core/bypass.hh"

namespace rbsim
{
namespace
{

/** A dual-format producer (RB arithmetic on the RB machines). */
ProdAvail
dualProducer(const MachineConfig &cfg, Cycle select, unsigned cluster = 0)
{
    return ProdAvail::make(select, cfg.latencyOf(OpClass::IntArith),
                           cfg.numBypassLevels,
                           static_cast<std::uint8_t>(cluster));
}

/** A TC producer (e.g. a logical op: latency 1/1). */
ProdAvail
tcProducer(const MachineConfig &cfg, Cycle select, unsigned cluster = 0)
{
    return ProdAvail::make(select, cfg.latencyOf(OpClass::IntLogical),
                           cfg.numBypassLevels,
                           static_cast<std::uint8_t>(cluster));
}

TEST(Bypass, IdealFullContinuousFromEarly)
{
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 4);
    const ProdAvail p = dualProducer(cfg, 10); // early = late = 11
    EXPECT_FALSE(operandAvail(cfg, p, false, 0, 10));
    for (Cycle t = 11; t < 30; ++t)
        EXPECT_TRUE(operandAvail(cfg, p, false, 0, t)) << t;
    EXPECT_EQ(p.rfTc, 14u); // 3 bypass levels then the register file
}

TEST(Bypass, BaselineArithHasTwoCycleLatency)
{
    const MachineConfig cfg =
        MachineConfig::make(MachineKind::Baseline, 4);
    const ProdAvail p = dualProducer(cfg, 10); // early = 12
    EXPECT_FALSE(operandAvail(cfg, p, false, 0, 11));
    EXPECT_TRUE(operandAvail(cfg, p, false, 0, 12));
}

TEST(Bypass, RbFullServesRbAtEarlyAndTcAtLate)
{
    const MachineConfig cfg = MachineConfig::make(MachineKind::RbFull, 4);
    const ProdAvail p = dualProducer(cfg, 10); // early 11, late 13
    EXPECT_TRUE(p.dual);
    // RB-capable consumer: back-to-back.
    EXPECT_TRUE(operandAvail(cfg, p, false, 0, 11));
    EXPECT_TRUE(operandAvail(cfg, p, false, 0, 12));
    // TC consumer: waits for the converter.
    EXPECT_FALSE(operandAvail(cfg, p, true, 0, 11));
    EXPECT_FALSE(operandAvail(cfg, p, true, 0, 12));
    EXPECT_TRUE(operandAvail(cfg, p, true, 0, 13));
    // Both continuous afterward.
    for (Cycle t = 13; t < 25; ++t) {
        EXPECT_TRUE(operandAvail(cfg, p, false, 0, t));
        EXPECT_TRUE(operandAvail(cfg, p, true, 0, t));
    }
}

TEST(Bypass, RbLimitedHasTwoCycleHoleForRbConsumers)
{
    // Paper section 4.2: "the result ... is available in redundant binary
    // format immediately after it is produced, and then there is a
    // 2-cycle hole in data availability. After that, the result is
    // available from the register file."
    const MachineConfig cfg =
        MachineConfig::make(MachineKind::RbLimited, 4);
    const ProdAvail p = dualProducer(cfg, 10); // early 11, late 13, rf 14
    EXPECT_TRUE(operandAvail(cfg, p, false, 0, 11));  // BYP-1
    EXPECT_FALSE(operandAvail(cfg, p, false, 0, 12)); // hole
    EXPECT_FALSE(operandAvail(cfg, p, false, 0, 13)); // hole
    EXPECT_TRUE(operandAvail(cfg, p, false, 0, 14));  // register file
    // TC consumers: BYP-3 then the register file — continuous.
    EXPECT_FALSE(operandAvail(cfg, p, true, 0, 12));
    EXPECT_TRUE(operandAvail(cfg, p, true, 0, 13));
    EXPECT_TRUE(operandAvail(cfg, p, true, 0, 14));
}

TEST(Bypass, RbLimitedTcProducerKeepsLevelsOneAndThree)
{
    const MachineConfig cfg =
        MachineConfig::make(MachineKind::RbLimited, 4);
    const ProdAvail p = tcProducer(cfg, 10); // early = late = 11
    // TC consumer: BYP-1 (TC data), hole at BYP-2, BYP-3, then RF.
    EXPECT_TRUE(operandAvail(cfg, p, true, 0, 11));
    EXPECT_FALSE(operandAvail(cfg, p, true, 0, 12));
    EXPECT_TRUE(operandAvail(cfg, p, true, 0, 13));
    EXPECT_TRUE(operandAvail(cfg, p, true, 0, 14));
    // RB-input consumer: BYP-3 is not wired into RB-input units.
    EXPECT_TRUE(operandAvail(cfg, p, false, 0, 11));
    EXPECT_FALSE(operandAvail(cfg, p, false, 0, 12));
    EXPECT_FALSE(operandAvail(cfg, p, false, 0, 13));
    EXPECT_TRUE(operandAvail(cfg, p, false, 0, 14));
}

TEST(Bypass, PaperFigure7Schedule)
{
    // Dependency graph of Figure 4 on the RB-limited machine: the SUB
    // depends on the ADD (selected at s+1) and the SLL; with the limited
    // network the SUB falls into the holes of both and retrieves its
    // operands from the register file, 3 cycles later than the Figure 5
    // full-bypass schedule. We reproduce the select-cycle arithmetic with
    // 1-cycle RB ops as in the paper's example.
    const MachineConfig cfg =
        MachineConfig::make(MachineKind::RbLimited, 4);
    LatencyPair one_cycle{1, 3};

    // SLL selected at 0, ADD at 1 (catches SLL's BYP-1), both RB-output.
    const ProdAvail sll = ProdAvail::make(0, one_cycle, 3, 0);
    const ProdAvail add = ProdAvail::make(1, one_cycle, 3, 0);

    // ADD (RB consumer of SLL) is selectable at 1: BYP-1 back-to-back.
    EXPECT_TRUE(operandAvail(cfg, sll, false, 0, 1));

    // The AND is a TC consumer of the SLL: selectable at its late cycle.
    EXPECT_EQ(firstAvail(cfg, sll, true, 0, 1), 3u);

    // The SUB needs SLL and ADD as RB inputs. ADD's BYP-1 is at 2, but
    // SLL is in its hole at 2 (register file only from 4). Joint first
    // cycle where both are available:
    Cycle t = 2;
    while (!(operandAvail(cfg, sll, false, 0, t) &&
             operandAvail(cfg, add, false, 0, t)))
        ++t;
    EXPECT_EQ(t, 5u); // matches Figure 7: RF read at cycle 6 = select 5

    // With the full network (RB-full), the SUB issues at 2, as Figure 5.
    const MachineConfig full = MachineConfig::make(MachineKind::RbFull, 4);
    t = 2;
    while (!(operandAvail(full, sll, false, 0, t) &&
             operandAvail(full, add, false, 0, t)))
        ++t;
    EXPECT_EQ(t, 2u);
}

class LimitedLevels : public ::testing::TestWithParam<std::uint8_t>
{
};

TEST_P(LimitedLevels, RemovedLevelsAreHolesRfAlwaysServes)
{
    const std::uint8_t mask = GetParam();
    const MachineConfig cfg = MachineConfig::makeIdealLimited(8, mask);
    const ProdAvail p = tcProducer(cfg, 20); // early 21, rf 24
    for (unsigned k = 1; k <= 3; ++k) {
        const bool present = mask & (1u << (k - 1));
        const Cycle t = 21 + (k - 1);
        if (t >= p.rfTc)
            continue;
        EXPECT_EQ(operandAvail(cfg, p, false, 0, t), present)
            << "level " << k;
    }
    for (Cycle t = p.rfTc; t < p.rfTc + 5; ++t)
        EXPECT_TRUE(operandAvail(cfg, p, false, 0, t));
    EXPECT_FALSE(operandAvail(cfg, p, false, 0, 20));
}

INSTANTIATE_TEST_SUITE_P(Fig14Masks, LimitedLevels,
                         ::testing::Values<std::uint8_t>(
                             0b111, 0b110, 0b101, 0b011, 0b100, 0b001));

TEST(Bypass, CrossClusterAddsOneCycle)
{
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 8);
    ASSERT_EQ(cfg.numClusters, 2u);
    const ProdAvail p = tcProducer(cfg, 10, 0); // early 11
    // Same cluster: 11. Other cluster: 12.
    EXPECT_TRUE(operandAvail(cfg, p, false, 0, 11));
    EXPECT_FALSE(operandAvail(cfg, p, false, 1, 11));
    EXPECT_TRUE(operandAvail(cfg, p, false, 1, 12));
}

TEST(Bypass, HoleUnawareSchedulerWaitsForContinuousRegion)
{
    // Ablation: without the section 4.3 interleaved-pattern wakeup, the
    // scheduler can only represent "available from cycle X onward", so on
    // RB-limited the BYP-1 catch is unusable and RB consumers wait for
    // the register file.
    MachineConfig cfg = MachineConfig::make(MachineKind::RbLimited, 4);
    cfg.holeAwareScheduling = false;
    const ProdAvail p = dualProducer(cfg, 10); // early 11, rf 14
    EXPECT_FALSE(operandAvail(cfg, p, false, 0, 11));
    EXPECT_FALSE(operandAvail(cfg, p, false, 0, 13));
    EXPECT_TRUE(operandAvail(cfg, p, false, 0, 14));
    // TC consumers are continuous from late anyway.
    EXPECT_TRUE(operandAvail(cfg, p, true, 0, 13));
}

TEST(Bypass, PatternMatchesOperandAvail)
{
    // The Figure 8 shift-register rendering agrees bit-for-bit with the
    // availability predicate, for every machine and both formats.
    for (MachineKind kind : {MachineKind::Baseline, MachineKind::RbLimited,
                             MachineKind::RbFull, MachineKind::Ideal}) {
        for (unsigned width : {4u, 8u}) {
            const MachineConfig cfg = MachineConfig::make(kind, width);
            for (bool needs_tc : {false, true}) {
                for (unsigned cc = 0; cc < cfg.numClusters; ++cc) {
                    const ProdAvail p = dualProducer(cfg, 5, 0);
                    const std::uint64_t pat = availabilityPattern(
                        cfg, p, needs_tc, cc, 5, 20);
                    for (unsigned i = 0; i < 20; ++i) {
                        EXPECT_EQ((pat >> i) & 1,
                                  operandAvail(cfg, p, needs_tc, cc,
                                               5 + i) ? 1u : 0u)
                            << machineName(kind) << " i=" << i;
                    }
                }
            }
        }
    }
}

TEST(Bypass, RbLimitedPatternShowsInterleavedBits)
{
    // The paper's Figure 8 initial value interleaves 0s and 1s according
    // to missing bypass levels: for an RB consumer of a 1-cycle RB op,
    // the pattern from the producer's select cycle is 0,1,0,0,1,1,1,...
    const MachineConfig cfg =
        MachineConfig::make(MachineKind::RbLimited, 4);
    const ProdAvail p = dualProducer(cfg, 0); // early 1, rf 4
    const std::uint64_t pat =
        availabilityPattern(cfg, p, false, 0, 0, 8);
    EXPECT_EQ(pat & 0xffu, 0b11110010u);
}

TEST(Bypass, AlwaysAvailableRecord)
{
    const MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 4);
    const ProdAvail p = ProdAvail::always();
    EXPECT_TRUE(operandAvail(cfg, p, true, 0, 0));
    EXPECT_TRUE(operandAvail(cfg, p, false, 1, 0));
    EXPECT_FALSE(servedByBypass(p, 5));
}

TEST(Bypass, FirstAvailScansHoles)
{
    const MachineConfig cfg =
        MachineConfig::make(MachineKind::RbLimited, 4);
    const ProdAvail p = dualProducer(cfg, 10); // early 11, hole 12-13
    EXPECT_EQ(firstAvail(cfg, p, false, 0, 11), 11u);
    EXPECT_EQ(firstAvail(cfg, p, false, 0, 12), 14u);
}

} // namespace
} // namespace rbsim
