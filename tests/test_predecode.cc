/**
 * @file
 * Differential tests for the predecoded threaded-dispatch interpreter
 * (func/predecode.hh): every program the repo can produce — the
 * committed fuzz-repro corpus, all registered workloads, and every
 * workload-generator preset — is replayed in lockstep through the
 * predecoded `Interp::step()` and the reference `stepReference()`, and
 * the StepRecords must be bit-equal at every step. The record-free
 * `runFast()` path and both dispatch strategies (computed goto and the
 * portable switch) must land on the same architectural state.
 *
 * CI additionally reruns this whole binary with RBSIM_FORCE_SWITCH=1 so
 * the process-selected dispatch path is proven on both strategies
 * end-to-end (mirroring the SIMD force-scalar parity lane).
 */

#include <gtest/gtest.h>

#include "func/interp.hh"
#include "func/predecode.hh"
#include "fuzz/corpus.hh"
#include "isa/assembler.hh"
#include "workloads/gen/opstream.hh"
#include "workloads/workload.hh"

#ifndef RBSIM_CORPUS_DIR
#error "RBSIM_CORPUS_DIR must point at tests/corpus"
#endif

namespace rbsim
{
namespace
{

//! Per-program lockstep budget. Workload programs run a few hundred
//! thousand dynamic instructions; this window covers warmup, the steady
//! state, and (for the short programs) the halt path.
constexpr std::uint64_t lockstepSteps = 60'000;

/** Drive predecoded step() and stepReference() in lockstep and require
 * bit-equal StepRecords, then identical final architectural state —
 * also from a third interpreter running the record-free runFast path. */
void
expectLockstep(const Program &p, std::uint64_t max_steps = lockstepSteps)
{
    Interp pre(p);
    Interp ref(p);
    std::uint64_t n = 0;
    while (!pre.halted() && n < max_steps) {
        ASSERT_FALSE(ref.halted()) << "reference halted early at " << n;
        const StepRecord a = pre.step();
        const StepRecord b = ref.stepReference();
        ASSERT_EQ(a, b) << "diverged at step " << n << ", pc "
                        << b.pcIndex;
        ++n;
    }
    EXPECT_EQ(pre.halted(), ref.halted());
    EXPECT_EQ(pre.pc(), ref.pc());
    EXPECT_EQ(pre.instsExecuted(), ref.instsExecuted());
    for (unsigned r = 0; r < numArchRegs; ++r)
        ASSERT_EQ(pre.reg(r), ref.reg(r)) << "r" << r;

    Interp fast(p);
    EXPECT_EQ(fast.runFast(max_steps), n);
    EXPECT_EQ(fast.halted(), ref.halted());
    EXPECT_EQ(fast.pc(), ref.pc());
    for (unsigned r = 0; r < numArchRegs; ++r)
        ASSERT_EQ(fast.reg(r), ref.reg(r)) << "r" << r;
}

/** Run a program through one explicit execDecodedLoop instantiation
 * (bypassing the process-wide strategy choice) and return the final
 * architectural registers + pc + halted + steps. */
struct LoopResult
{
    std::array<Word, numArchRegs> regs{};
    std::uint64_t pc = 0;
    std::uint64_t steps = 0;
    bool halted = false;

    bool operator==(const LoopResult &) const = default;
};

template <bool UseGoto>
LoopResult
runExplicit(const Program &p, std::uint64_t max_steps)
{
    const auto dp = decodeProgram(p);
    std::vector<Word> regs(dp->slotCount(), 0);
    for (std::size_t i = 0; i < dp->pool.size(); ++i)
        regs[numArchRegs + i] = dp->pool[i];
    MemImage mem;
    mem.loadProgram(p);

    ExecCtx cx;
    cx.regs = regs.data();
    cx.mem = &mem;
    cx.dp = dp.get();
    cx.pc = p.entry;
    NullExecSink sink;
    execDecodedLoop<UseGoto>(cx, max_steps, sink);

    LoopResult out;
    for (unsigned r = 0; r < numArchRegs; ++r)
        out.regs[r] = r == zeroReg ? 0 : regs[r];
    out.pc = cx.pc;
    out.steps = cx.steps;
    out.halted = cx.halted;
    return out;
}

// ---------------------------------------------------------------------
// Decode-level properties.

TEST(Predecode, CacheReturnsSameLoweringForEqualPrograms)
{
    const Program a = assemble("ldiq r1, 7\nhalt");
    const Program b = assemble("ldiq r1, 7\nhalt");
    ASSERT_EQ(a.hash(), b.hash());
    EXPECT_EQ(decodeProgram(a).get(), decodeProgram(b).get());
}

TEST(Predecode, LiteralPoolDeduplicatesAndScratchFollows)
{
    const Program p = assemble(R"(
            addq r1, #5, r2
            subq r3, #5, r4
            addq r5, #9, r6
            halt
    )");
    const auto dp = decodeProgram(p);
    EXPECT_EQ(dp->pool.size(), 2u); // 5 and 9, deduplicated
    EXPECT_EQ(dp->pool[0], 5u);
    EXPECT_EQ(dp->pool[1], 9u);
    EXPECT_EQ(dp->scratch, numArchRegs + 2);
    EXPECT_EQ(dp->slotCount(), std::size_t{numArchRegs} + 3);
}

TEST(Predecode, DeadDestOperateFoldsToNop)
{
    const Program p = assemble(R"(
            addq r1, r2, r31
            ldq r31, 0(r1)
            halt
    )");
    const auto dp = decodeProgram(p);
    EXPECT_EQ(dp->ops[0].h, Handler::Nop); // dead operate folds
    EXPECT_EQ(dp->ops[1].h, Handler::Ld8); // dead load still touches mem
}

TEST(Predecode, DispatchNameMatchesEnvironment)
{
    const char *env = std::getenv("RBSIM_FORCE_SWITCH");
    const bool forced = env != nullptr && *env != '\0' &&
                        !(env[0] == '0' && env[1] == '\0');
    if (forced || !RBSIM_HAS_COMPUTED_GOTO)
        EXPECT_STREQ(dispatchName(), "switch");
    else
        EXPECT_STREQ(dispatchName(), "goto");
}

// ---------------------------------------------------------------------
// Step-level edge cases the lockstep sweeps would only hit by luck.

TEST(Predecode, SingleStepRunOffEndHalts)
{
    const Program p = assemble("nop\nnop");
    Interp in(p);
    in.step();
    EXPECT_FALSE(in.halted());
    const StepRecord rec = in.step();
    EXPECT_EQ(rec.nextPc, 2u);
    EXPECT_TRUE(in.halted()); // off the code image, even at max_steps
    EXPECT_EQ(in.instsExecuted(), 2u);
}

TEST(Predecode, RunFastHonorsStepBudget)
{
    const Program p = assemble(R"(
            ldiq r1, 1000
        loop:
            subq r1, #1, r1
            bne r1, loop
            halt
    )");
    Interp in(p);
    EXPECT_EQ(in.runFast(5), 5u);
    EXPECT_FALSE(in.halted());
    EXPECT_EQ(in.instsExecuted(), 5u);
    in.runFast(1'000'000);
    EXPECT_TRUE(in.halted());

    Interp ref(p);
    while (!ref.halted())
        ref.stepReference();
    EXPECT_EQ(in.instsExecuted(), ref.instsExecuted());
    EXPECT_EQ(in.pc(), ref.pc());
}

TEST(Predecode, HaltLeavesPcOnItself)
{
    const Program p = assemble("nop\nhalt\nnop");
    Interp in(p);
    in.step();
    const StepRecord rec = in.step();
    EXPECT_TRUE(rec.halted);
    EXPECT_EQ(rec.nextPc, 1u);
    EXPECT_EQ(in.pc(), 1u);
    EXPECT_TRUE(in.halted());
}

// ---------------------------------------------------------------------
// Both dispatch strategies, explicitly instantiated (the CI lane
// additionally reruns the whole binary under RBSIM_FORCE_SWITCH=1 to
// cover the process-selected path).

TEST(Predecode, GotoAndSwitchLoopsAgree)
{
    for (const char *preset : {"ycsb-a", "chase-dl1", "branch-0.50",
                               "rb-adversarial"}) {
        const Program p =
            gen::buildGenProgram(gen::genPreset(preset), WorkloadParams{});
        const LoopResult sw = runExplicit<false>(p, lockstepSteps);
#if RBSIM_HAS_COMPUTED_GOTO
        const LoopResult go = runExplicit<true>(p, lockstepSteps);
        EXPECT_EQ(go, sw) << preset;
#endif
        // And the process-selected strategy (whichever it is) agrees
        // with the reference.
        Interp ref(p);
        std::uint64_t n = 0;
        while (!ref.halted() && n < lockstepSteps) {
            ref.stepReference();
            ++n;
        }
        EXPECT_EQ(sw.pc, ref.pc()) << preset;
        EXPECT_EQ(sw.steps, ref.instsExecuted()) << preset;
        for (unsigned r = 0; r < numArchRegs; ++r)
            ASSERT_EQ(sw.regs[r], ref.reg(r)) << preset << " r" << r;
    }
}

// ---------------------------------------------------------------------
// Lockstep sweeps: corpus, workloads, generator presets.

TEST(PredecodeParity, FuzzCorpus)
{
    const auto files = fuzz::listCorpus(RBSIM_CORPUS_DIR);
    ASSERT_GE(files.size(), 10u);
    unsigned programs = 0;
    for (const std::string &path : files) {
        const fuzz::ReproFile repro = fuzz::loadRepro(path);
        if (!repro.programLevel())
            continue; // value-level repro: no program to replay
        SCOPED_TRACE(path);
        expectLockstep(assemble(repro.asmText), 500'000);
        ++programs;
    }
    EXPECT_GE(programs, 5u) << "corpus lost its program-level repros";
}

class PredecodeWorkloadParity
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PredecodeWorkloadParity, Lockstep)
{
    const WorkloadInfo &w = findWorkload(GetParam());
    expectLockstep(w.build(WorkloadParams{}));
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const WorkloadInfo &w : allWorkloads())
        names.push_back(w.name);
    return names;
}

std::string
sanitizeName(const ::testing::TestParamInfo<std::string> &info)
{
    std::string s = info.param;
    for (char &c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return s;
}

INSTANTIATE_TEST_SUITE_P(All, PredecodeWorkloadParity,
                         ::testing::ValuesIn(workloadNames()),
                         sanitizeName);

class PredecodeGenParity : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PredecodeGenParity, Lockstep)
{
    const gen::GenConfig cfg = gen::genPreset(GetParam());
    expectLockstep(gen::buildGenProgram(cfg, WorkloadParams{}));
}

INSTANTIATE_TEST_SUITE_P(Presets, PredecodeGenParity,
                         ::testing::ValuesIn(gen::genPresetNames()),
                         sanitizeName);

} // namespace
} // namespace rbsim
