/**
 * @file
 * Scheduler-bank and wakeup-array tests: oldest-first select, width
 * exhaustion, squash, steering round-robin with reset-on-empty, the
 * randomized wakeup-vs-polled select agreement, and whole-machine
 * statistic bit-identity between the bitset wakeup array and the polled
 * debug path (including the per-cycle oracle cross-check mode and the
 * retirement-progress watchdog).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <vector>

#include "core/machine_config.hh"
#include "core/scheduler.hh"
#include "isa/builder.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace rbsim
{
namespace
{

// ------------------------------------------------------ polled select

TEST(Scheduler, SelectsOldestFirstAcrossSlotOrder)
{
    SchedulerBank bank(1, 8, 2);
    // Insert, remove, reinsert so slot order diverges from age order.
    bank.insert(0, 1);
    bank.insert(0, 2);
    bank.insert(0, 3);
    bank.squashAfter(2); // frees slot of seq 3
    bank.insert(0, 4);   // reuses the lowest free slot
    bank.insert(0, 5);

    std::vector<std::uint64_t> issued;
    bank.selectCycle(
        [](std::uint64_t, unsigned) { return true; },
        [&issued](std::uint64_t seq, unsigned) { issued.push_back(seq); });
    ASSERT_EQ(issued.size(), 2u);
    EXPECT_EQ(issued[0], 1u);
    EXPECT_EQ(issued[1], 2u);
}

TEST(Scheduler, SelectWidthExhaustionStopsTheScan)
{
    SchedulerBank bank(1, 16, 2);
    for (std::uint64_t s = 1; s <= 6; ++s)
        bank.insert(0, s);
    // Seqs 1 and 2 are not ready; 3..6 are. Width 2 must pick 3 and 4,
    // and must not even evaluate entries after the cut.
    std::vector<std::uint64_t> polled;
    std::vector<std::uint64_t> issued;
    bank.selectCycle(
        [&polled](std::uint64_t seq, unsigned) {
            polled.push_back(seq);
            return seq >= 3;
        },
        [&issued](std::uint64_t seq, unsigned) { issued.push_back(seq); });
    EXPECT_EQ(issued, (std::vector<std::uint64_t>{3, 4}));
    EXPECT_EQ(polled, (std::vector<std::uint64_t>{1, 2, 3, 4}));
    EXPECT_EQ(bank.occupancy(), 4u);
}

TEST(Scheduler, SquashAfterRemovesYoungerEntriesOnly)
{
    SchedulerBank bank(2, 8, 2);
    bank.insert(0, 10);
    bank.insert(0, 12);
    bank.insert(1, 11);
    bank.insert(1, 13);
    bank.squashAfter(11);
    EXPECT_EQ(bank.occupancy(), 2u);
    EXPECT_EQ(bank.occupancyOf(0), 1u);
    EXPECT_EQ(bank.occupancyOf(1), 1u);

    std::vector<std::uint64_t> issued;
    bank.selectCycle(
        [](std::uint64_t, unsigned) { return true; },
        [&issued](std::uint64_t seq, unsigned) { issued.push_back(seq); });
    std::sort(issued.begin(), issued.end());
    EXPECT_EQ(issued, (std::vector<std::uint64_t>{10, 11}));
}

TEST(Scheduler, SteeringRoundRobinByPairs)
{
    SchedulerBank bank(4, 8, 2);
    std::vector<unsigned> targets;
    for (unsigned i = 0; i < 10; ++i) {
        targets.push_back(bank.steerTarget());
        bank.advanceSteering();
    }
    EXPECT_EQ(targets,
              (std::vector<unsigned>{0, 0, 1, 1, 2, 2, 3, 3, 0, 0}));
}

TEST(Scheduler, SquashToEmptyResetsSteering)
{
    SchedulerBank bank(4, 8, 2);
    bank.insert(0, 1);
    // Advance steering mid-pair and onto scheduler 1.
    bank.advanceSteering();
    bank.advanceSteering();
    bank.advanceSteering();
    EXPECT_EQ(bank.steerTarget(), 1u);
    // Partial squash (entry survives): steering state is preserved.
    bank.squashAfter(1);
    EXPECT_EQ(bank.steerTarget(), 1u);
    // Squash to empty: steering restarts pair-aligned at scheduler 0.
    bank.squashAfter(0);
    EXPECT_EQ(bank.occupancy(), 0u);
    EXPECT_EQ(bank.steerTarget(), 0u);
    bank.advanceSteering();
    EXPECT_EQ(bank.steerTarget(), 0u); // first pair stays on scheduler 0
    bank.advanceSteering();
    EXPECT_EQ(bank.steerTarget(), 1u);
}

// ------------------------------------------------- wakeup-array select

TEST(Scheduler, WakeupSlotRefsValidateAgainstReuse)
{
    SchedulerBank bank(1, 8, 2);
    const auto r1 = bank.insert(0, 1);
    const auto g1 = bank.genOf(r1);
    EXPECT_TRUE(bank.holds(r1, 1));
    EXPECT_TRUE(bank.live(r1, g1));
    bank.squashAfter(0);
    EXPECT_FALSE(bank.live(r1, g1));
    const auto r2 = bank.insert(0, 2); // reuses slot 0
    EXPECT_EQ(r2.slot, r1.slot);
    EXPECT_FALSE(bank.live(r1, g1)); // old generation stays dead
    EXPECT_TRUE(bank.live(r2, bank.genOf(r2)));
}

TEST(Scheduler, SeqCheckAcceptsRecycledSlotButGenCheckDoesNot)
{
    // Why wakeup-event validation is (SlotRef, gen) and holds() is
    // debug-only: a squash rewinds the core's sequence counter
    // (flushAfter sets nextSeq = branch.seq + 1), so the instruction
    // dispatched right after a squash reuses both the freed slot AND
    // the squashed occupant's seq. A seq-based check cannot tell the
    // two occupancies apart; the generation counter can.
    SchedulerBank bank(1, 8, 2);
    const auto r1 = bank.insert(0, 7);
    const auto g1 = bank.genOf(r1);
    bank.squashAfter(6);               // seq 7 squashed, slot freed
    const auto r2 = bank.insert(0, 7); // recycled seq, same slot
    ASSERT_EQ(r2.slot, r1.slot);
    ASSERT_EQ(r2.sched, r1.sched);
    // holds() is fooled: the slot is valid and holds seq 7 again, so a
    // stale queued event for the squashed instruction would pass.
    EXPECT_TRUE(bank.holds(r1, 7));
    // live() is not: the reuse bumped the slot generation.
    EXPECT_FALSE(bank.live(r1, g1));
    EXPECT_TRUE(bank.live(r2, bank.genOf(r2)));
    EXPECT_NE(bank.genOf(r2), g1);
}

TEST(Scheduler, WakeupSelectMatchesPolledOnRandomizedSchedules)
{
    // Drive two identical banks — one via latched ready bits, one via a
    // per-entry readiness poll — through randomized insert/ready/squash
    // traffic and require identical issue streams every cycle.
    std::mt19937_64 rng(7);
    for (unsigned trial = 0; trial < 50; ++trial) {
        const unsigned entries = 1 + static_cast<unsigned>(rng() % 32);
        const unsigned width = 1 + static_cast<unsigned>(rng() % 3);
        SchedulerBank wake(2, entries, width);
        SchedulerBank poll(2, entries, width);
        std::uint64_t next_seq = 1;
        // seq -> (readyFrom cycle); slot refs for the wakeup bank.
        std::map<std::uint64_t, Cycle> ready_from;
        std::map<std::uint64_t, SchedulerBank::SlotRef> refs;
        std::set<std::uint64_t> live;

        for (Cycle t = 0; t < 40; ++t) {
            // Random inserts.
            for (unsigned k = 0; k < rng() % 4; ++k) {
                const unsigned s = static_cast<unsigned>(rng() % 2);
                if (!wake.hasSpace(s))
                    continue;
                const std::uint64_t seq = next_seq++;
                const auto ref = wake.insert(s, seq);
                poll.insert(s, seq);
                refs[seq] = ref;
                ready_from[seq] = t + 1 + rng() % 6;
                live.insert(seq);
            }
            // Occasional squash.
            if (rng() % 10 == 0 && !live.empty()) {
                auto it = live.begin();
                std::advance(it, rng() % live.size());
                const std::uint64_t cut = *it;
                wake.squashAfter(cut);
                poll.squashAfter(cut);
                for (auto l = live.upper_bound(cut); l != live.end();)
                    l = live.erase(l);
            }
            // Latch ready bits that became due this cycle.
            for (const std::uint64_t seq : live) {
                if (ready_from[seq] <= t)
                    wake.setReady(refs[seq], true);
            }
            std::vector<std::uint64_t> from_wake;
            std::vector<std::uint64_t> from_poll;
            wake.selectWakeup(
                [&from_wake](std::uint64_t seq, unsigned) {
                    from_wake.push_back(seq);
                    return true;
                },
                [](std::uint64_t, unsigned, SchedulerBank::SlotRef) {});
            poll.selectCycle(
                [&](std::uint64_t seq, unsigned) {
                    return ready_from[seq] <= t;
                },
                [&from_poll](std::uint64_t seq, unsigned) {
                    from_poll.push_back(seq);
                });
            ASSERT_EQ(from_wake, from_poll) << "trial " << trial
                                            << " cycle " << t;
            for (const std::uint64_t seq : from_wake)
                live.erase(seq);
            ASSERT_EQ(wake.occupancy(), poll.occupancy());
        }
    }
}

// ------------------------------------- whole-machine statistic parity

std::vector<MachineConfig>
parityMachines(unsigned width)
{
    return {
        MachineConfig::make(MachineKind::Baseline, width),
        MachineConfig::make(MachineKind::RbLimited, width),
        MachineConfig::make(MachineKind::RbFull, width),
        MachineConfig::make(MachineKind::Ideal, width),
    };
}

TEST(WakeupParity, StatSnapshotsBitIdenticalToPolledPath)
{
    // The acceptance bar of the rewrite: on every machine model, the
    // wakeup array and the per-cycle polled oracle produce the same
    // StatSnapshot, bit for bit — same IPC, same hole-wait accounting,
    // same LSQ search counts, same everything registered.
    WorkloadParams wp;
    for (const char *name : {"mcf", "compress", "vortex"}) {
        const Program prog = findWorkload(name).build(wp);
        for (unsigned width : {4u, 8u}) {
            for (MachineConfig cfg : parityMachines(width)) {
                cfg.polledScheduler = false;
                const SimResult wake = simulate(cfg, prog);
                cfg.polledScheduler = true;
                const SimResult poll = simulate(cfg, prog);
                ASSERT_TRUE(wake.halted);
                ASSERT_TRUE(poll.halted);
                EXPECT_TRUE(wake.stats == poll.stats)
                    << cfg.label << " x " << name << " w" << width
                    << ": wakeup ipc=" << wake.ipc()
                    << " polled ipc=" << poll.ipc();
            }
        }
    }
}

TEST(WakeupParity, IdleSkipIsStatNeutral)
{
    WorkloadParams wp;
    const Program prog = findWorkload("mcf").build(wp);
    MachineConfig cfg = MachineConfig::make(MachineKind::RbLimited, 8);
    cfg.idleSkip = true;
    const SimResult skipped = simulate(cfg, prog);
    cfg.idleSkip = false;
    const SimResult stepped = simulate(cfg, prog);
    EXPECT_TRUE(skipped.stats == stepped.stats);
}

TEST(WakeupParity, OracleModeCrossChecksEveryCycle)
{
    // config.wakeupOracle recomputes every valid entry's readiness and
    // hole class from the scoreboard each cycle and aborts on any
    // divergence from the latched bits; surviving a full co-simulated
    // run is the pass condition.
    WorkloadParams wp;
    const Program prog = findWorkload("ijpeg").build(wp);
    for (MachineKind kind :
         {MachineKind::RbLimited, MachineKind::Ideal}) {
        MachineConfig cfg = MachineConfig::make(kind, 8);
        cfg.wakeupOracle = true;
        const SimResult r = simulate(cfg, prog);
        EXPECT_TRUE(r.halted) << cfg.label;
    }
}

TEST(WakeupParity, OversizedSchedulerFallsBackToPolledQueue)
{
    // One 128-entry scheduler exceeds the 64-bit masks: the bank must
    // report itself wakeup-incapable and the core must run (and agree
    // with itself) on the queue-scan path.
    SchedulerBank big(1, 128, 8);
    EXPECT_FALSE(big.wakeupCapable());

    WorkloadParams wp;
    const Program prog = findWorkload("compress").build(wp);
    MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 4);
    cfg.numSchedulers = 1;
    cfg.schedEntries = 128;
    cfg.selectWidth = 4;
    const SimResult r = simulate(cfg, prog);
    EXPECT_TRUE(r.halted);
    EXPECT_GT(r.ipc(), 0.0);
}

// ------------------------------------------------- deadlock watchdog

TEST(Watchdog, AbortsRunsWithoutRetirementProgress)
{
    // A watchdog window shorter than the memory latency trips on the
    // very first missing load: run() must return false (not assert, not
    // spin) and count the abort in a registered statistic.
    CodeBuilder cb("watchdog");
    cb.dataWords(0x40000, {123});
    cb.ldiq(R(1), 0x40000);
    // Cold miss: ~memLatency cycles with no retirement progress.
    cb.load(Opcode::LDQ, R(2), 0, R(1));
    cb.opi(Opcode::ADDQ, R(2), 1, R(3));
    cb.halt();
    const Program prog = cb.finish();

    MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 4);
    cfg.deadlockCycles = 40;
    cfg.memLatency = 400;
    for (bool polled : {false, true}) {
        cfg.polledScheduler = polled;
        const SimResult r = simulate(cfg, prog);
        EXPECT_FALSE(r.halted) << (polled ? "polled" : "wakeup");
        EXPECT_EQ(r.counter("core.deadlockAborts"), 1u);
    }
    // A sane window lets the same program finish.
    cfg.deadlockCycles = 100000;
    cfg.polledScheduler = false;
    const SimResult ok = simulate(cfg, prog);
    EXPECT_TRUE(ok.halted);
    EXPECT_EQ(ok.counter("core.deadlockAborts"), 0u);
}

} // namespace
} // namespace rbsim
