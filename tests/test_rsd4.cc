/**
 * @file
 * Tests for the section 3.4 comparison arithmetic: radix-4 signed-digit
 * addition (bounded transfer propagation, value correctness) and the
 * carry-save accumulator.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "rb/carry_save.hh"
#include "rb/gatedelay.hh"
#include "rb/rsd4.hh"

namespace rbsim
{
namespace
{

TEST(Rsd4, FromTcRoundTrips)
{
    Rng rng(91);
    for (int i = 0; i < 20000; ++i) {
        const Word w = rng.next();
        EXPECT_EQ(Rsd4Num::fromTc(w).toTc(), w);
    }
}

TEST(Rsd4, AddMatchesTwosComplement)
{
    Rng rng(92);
    for (int i = 0; i < 30000; ++i) {
        const Word a = rng.next();
        const Word b = rng.next();
        EXPECT_EQ(rsd4Add(Rsd4Num::fromTc(a),
                          Rsd4Num::fromTc(b)).toTc(),
                  a + b);
    }
}

TEST(Rsd4, ChainsOfAddsAndSubsStayExact)
{
    Rng rng(93);
    for (int trial = 0; trial < 500; ++trial) {
        Word expect = rng.next();
        Rsd4Num acc = Rsd4Num::fromTc(expect);
        for (int i = 0; i < 30; ++i) {
            const Word v = rng.next();
            if (rng.chance(1, 2)) {
                expect += v;
                acc = rsd4Add(acc, Rsd4Num::fromTc(v));
            } else {
                expect -= v;
                acc = rsd4Sub(acc, Rsd4Num::fromTc(v));
            }
            ASSERT_EQ(acc.toTc(), expect);
        }
    }
}

TEST(Rsd4, DigitsStayInRangeThroughChains)
{
    Rng rng(94);
    Rsd4Num acc = Rsd4Num::fromTc(rng.next());
    for (int i = 0; i < 5000; ++i) {
        acc = rsd4Add(acc, Rsd4Num::fromTc(rng.next()));
        for (unsigned d = 0; d < 32; ++d) {
            ASSERT_GE(acc.digit(d), -3);
            ASSERT_LE(acc.digit(d), 3);
        }
    }
}

TEST(Rsd4, TransferPropagationIsBounded)
{
    // Digit i of the sum depends only on digits i and i-1 of the inputs:
    // clearing all digits above i must not change digits <= i.
    Rng rng(95);
    for (int trial = 0; trial < 3000; ++trial) {
        const Rsd4Num x = Rsd4Num::fromTc(rng.next());
        const Rsd4Num y =
            rsd4Sub(Rsd4Num::fromTc(rng.next()),
                    Rsd4Num::fromTc(rng.next())); // digits of mixed sign
        const Rsd4Num base = rsd4Add(x, y);
        const unsigned cut = 1 + static_cast<unsigned>(rng.below(30));
        Rsd4Num x2 = x;
        for (unsigned d = cut + 1; d < 32; ++d)
            x2.setDigit(d, 0);
        const Rsd4Num mod = rsd4Add(x2, y);
        for (unsigned d = 0; d <= cut; ++d)
            ASSERT_EQ(base.digit(d), mod.digit(d));
    }
}

TEST(Rsd4, NegationIsFree)
{
    Rng rng(96);
    for (int i = 0; i < 5000; ++i) {
        const Word w = rng.next();
        EXPECT_EQ(Rsd4Num::fromTc(w).negated().toTc(), Word(0) - w);
    }
}

TEST(Rsd4, DelayModelOrdering)
{
    // Section 3.4's family ordering: carry-save < radix-2 RB < radix-4
    // SD << CLA(64) << ripple(64).
    EXPECT_LT(csaLevelDepth(), rbAdderDepth(64));
    EXPECT_LT(rbAdderDepth(64), rsd4AdderDepth(64));
    EXPECT_LT(rsd4AdderDepth(64), claAdderDepth(64));
    EXPECT_LT(claAdderDepth(64), rippleAdderDepth(64));
}

TEST(CarrySave, AccumulateAndResolve)
{
    Rng rng(97);
    for (int trial = 0; trial < 2000; ++trial) {
        CsaAccumulator acc(rng.next());
        Word expect = acc.resolve();
        for (int i = 0; i < 20; ++i) {
            const Word v = rng.next();
            if (rng.chance(3, 4)) {
                acc.add(v);
                expect += v;
            } else {
                acc.sub(v);
                expect -= v;
            }
        }
        EXPECT_EQ(acc.resolve(), expect);
    }
}

TEST(CarrySave, PlanesAreRedundant)
{
    CsaAccumulator acc;
    acc.add(7);
    acc.add(9);
    // The value is right even though neither plane alone holds it.
    EXPECT_EQ(acc.resolve(), 16u);
    EXPECT_NE(acc.sumBits(), 16u);
}

} // namespace
} // namespace rbsim
